#include "workloads/models.hh"

#include "common/logging.hh"

namespace neummu {

namespace {

LayerSpec
convLayer(const std::string &name, unsigned batch, unsigned cin,
          unsigned h, unsigned w, unsigned cout, unsigned r, unsigned s,
          unsigned stride, unsigned pad)
{
    LayerSpec layer;
    layer.name = name;
    layer.kind = LayerKind::Conv;
    layer.conv = ConvParams{cin, h, w, cout, r, s, stride, pad};
    layer.batch = batch;
    return layer;
}

LayerSpec
gemmLayer(const std::string &name, std::uint64_t m, std::uint64_t k,
          std::uint64_t n, unsigned repeat = 1)
{
    LayerSpec layer;
    layer.name = name;
    layer.kind = LayerKind::Gemm;
    layer.gemm = GemmDims{m, k, n};
    layer.repeat = repeat;
    layer.batch = unsigned(m);
    return layer;
}

/** One GoogLeNet inception module: six convolution kernels. */
void
addInception(DnnModel &wl, const std::string &name, unsigned batch,
             unsigned cin, unsigned hw, unsigned n1x1, unsigned n3x3red,
             unsigned n3x3, unsigned n5x5red, unsigned n5x5,
             unsigned pool_proj)
{
    wl.layers.push_back(
        convLayer(name + ".1x1", batch, cin, hw, hw, n1x1, 1, 1, 1, 0));
    wl.layers.push_back(convLayer(name + ".3x3red", batch, cin, hw, hw,
                                  n3x3red, 1, 1, 1, 0));
    wl.layers.push_back(convLayer(name + ".3x3", batch, n3x3red, hw, hw,
                                  n3x3, 3, 3, 1, 1));
    wl.layers.push_back(convLayer(name + ".5x5red", batch, cin, hw, hw,
                                  n5x5red, 1, 1, 1, 0));
    wl.layers.push_back(convLayer(name + ".5x5", batch, n5x5red, hw, hw,
                                  n5x5, 5, 5, 1, 2));
    wl.layers.push_back(convLayer(name + ".pool_proj", batch, cin, hw,
                                  hw, pool_proj, 1, 1, 1, 0));
}

/** One ResNet bottleneck block (1x1 -> 3x3 -> 1x1 [+ projection]). */
void
addBottleneck(DnnModel &wl, const std::string &name, unsigned batch,
              unsigned cin, unsigned hw_in, unsigned mid, unsigned cout,
              unsigned stride, bool project)
{
    const unsigned hw_out = (stride == 1) ? hw_in : hw_in / stride;
    wl.layers.push_back(
        convLayer(name + ".1x1a", batch, cin, hw_in, hw_in, mid, 1, 1, 1,
                  0));
    wl.layers.push_back(convLayer(name + ".3x3", batch, mid, hw_in,
                                  hw_in, mid, 3, 3, stride, 1));
    wl.layers.push_back(convLayer(name + ".1x1b", batch, mid, hw_out,
                                  hw_out, cout, 1, 1, 1, 0));
    if (project) {
        wl.layers.push_back(convLayer(name + ".proj", batch, cin, hw_in,
                                      hw_in, cout, 1, 1, stride, 0));
    }
}

DnnModel
makeAlexNet(unsigned batch)
{
    DnnModel wl{"CNN-1", {}};
    wl.layers.push_back(
        convLayer("conv1", batch, 3, 227, 227, 96, 11, 11, 4, 0));
    wl.layers.push_back(
        convLayer("conv2", batch, 96, 27, 27, 256, 5, 5, 1, 2));
    wl.layers.push_back(
        convLayer("conv3", batch, 256, 13, 13, 384, 3, 3, 1, 1));
    wl.layers.push_back(
        convLayer("conv4", batch, 384, 13, 13, 384, 3, 3, 1, 1));
    wl.layers.push_back(
        convLayer("conv5", batch, 384, 13, 13, 256, 3, 3, 1, 1));
    wl.layers.push_back(gemmLayer("fc6", batch, 9216, 4096));
    wl.layers.push_back(gemmLayer("fc7", batch, 4096, 4096));
    wl.layers.push_back(gemmLayer("fc8", batch, 4096, 1000));
    return wl;
}

DnnModel
makeGoogLeNet(unsigned batch)
{
    DnnModel wl{"CNN-2", {}};
    wl.layers.push_back(
        convLayer("conv1", batch, 3, 224, 224, 64, 7, 7, 2, 3));
    wl.layers.push_back(
        convLayer("conv2red", batch, 64, 56, 56, 64, 1, 1, 1, 0));
    wl.layers.push_back(
        convLayer("conv2", batch, 64, 56, 56, 192, 3, 3, 1, 1));
    addInception(wl, "3a", batch, 192, 28, 64, 96, 128, 16, 32, 32);
    addInception(wl, "3b", batch, 256, 28, 128, 128, 192, 32, 96, 64);
    addInception(wl, "4a", batch, 480, 14, 192, 96, 208, 16, 48, 64);
    addInception(wl, "4b", batch, 512, 14, 160, 112, 224, 24, 64, 64);
    addInception(wl, "4c", batch, 512, 14, 128, 128, 256, 24, 64, 64);
    addInception(wl, "4d", batch, 512, 14, 112, 144, 288, 32, 64, 64);
    addInception(wl, "4e", batch, 528, 14, 256, 160, 320, 32, 128, 128);
    addInception(wl, "5a", batch, 832, 7, 256, 160, 320, 32, 128, 128);
    addInception(wl, "5b", batch, 832, 7, 384, 192, 384, 48, 128, 128);
    wl.layers.push_back(gemmLayer("fc", batch, 1024, 1000));
    return wl;
}

DnnModel
makeResNet50(unsigned batch)
{
    DnnModel wl{"CNN-3", {}};
    wl.layers.push_back(
        convLayer("conv1", batch, 3, 224, 224, 64, 7, 7, 2, 3));

    struct Stage
    {
        const char *name;
        unsigned blocks;
        unsigned mid;
        unsigned cout;
        unsigned hw;
        unsigned first_stride;
    };
    const Stage stages[] = {
        {"conv2", 3, 64, 256, 56, 1},
        {"conv3", 4, 128, 512, 56, 2},
        {"conv4", 6, 256, 1024, 28, 2},
        {"conv5", 3, 512, 2048, 14, 2},
    };
    unsigned cin = 64;
    for (const Stage &st : stages) {
        unsigned hw = st.hw;
        for (unsigned b = 0; b < st.blocks; b++) {
            const unsigned stride = (b == 0) ? st.first_stride : 1;
            addBottleneck(wl,
                          std::string(st.name) + "_" +
                              std::to_string(b + 1),
                          batch, cin, hw, st.mid, st.cout, stride,
                          b == 0);
            if (b == 0)
                hw /= st.first_stride;
            cin = st.cout;
        }
    }
    wl.layers.push_back(gemmLayer("fc", batch, 2048, 1000));
    return wl;
}

/**
 * DeepBench-style recurrent kernels. Per timestep the cell computes
 * one GEMM over the concatenated [input, hidden] vector: vanilla RNN
 * produces h outputs, an LSTM produces 4h gate pre-activations.
 */
DnnModel
makeRnn(const std::string &name, unsigned batch, unsigned hidden,
        unsigned gates)
{
    DnnModel wl{name, {}};
    wl.layers.push_back(gemmLayer("step", batch, 2ull * hidden,
                                  std::uint64_t(gates) * hidden,
                                  rnnSimulatedTimesteps));
    return wl;
}

} // namespace

const std::vector<WorkloadId> &
allWorkloads()
{
    static const std::vector<WorkloadId> ids = {
        WorkloadId::CNN1, WorkloadId::CNN2, WorkloadId::CNN3,
        WorkloadId::RNN1, WorkloadId::RNN2, WorkloadId::RNN3,
    };
    return ids;
}

std::string
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::CNN1: return "CNN-1";
      case WorkloadId::CNN2: return "CNN-2";
      case WorkloadId::CNN3: return "CNN-3";
      case WorkloadId::RNN1: return "RNN-1";
      case WorkloadId::RNN2: return "RNN-2";
      case WorkloadId::RNN3: return "RNN-3";
    }
    NEUMMU_PANIC("unknown workload id");
}

DnnModel
makeWorkload(WorkloadId id, unsigned batch)
{
    NEUMMU_ASSERT(batch >= 1, "batch must be >= 1");
    switch (id) {
      case WorkloadId::CNN1: return makeAlexNet(batch);
      case WorkloadId::CNN2: return makeGoogLeNet(batch);
      case WorkloadId::CNN3: return makeResNet50(batch);
      case WorkloadId::RNN1: return makeRnn("RNN-1", batch, 2560, 1);
      case WorkloadId::RNN2: return makeRnn("RNN-2", batch, 1024, 4);
      case WorkloadId::RNN3: return makeRnn("RNN-3", batch, 2048, 4);
    }
    NEUMMU_PANIC("unknown workload id");
}

DnnModel
makeCommonLayer(WorkloadId id, unsigned batch)
{
    // Large batches make convolutions compute-bound (translation
    // latency hides); the memory-bound layers that dominate large-
    // batch translation behavior are the fully connected ones, so
    // they serve as each CNN's common layer configuration.
    DnnModel wl{workloadName(id) + ".common", {}};
    switch (id) {
      case WorkloadId::CNN1:
        wl.layers.push_back(gemmLayer("fc6", batch, 9216, 4096));
        break;
      case WorkloadId::CNN2:
        wl.layers.push_back(gemmLayer("fc", batch, 1024, 1000));
        break;
      case WorkloadId::CNN3:
        wl.layers.push_back(gemmLayer("fc", batch, 2048, 1000));
        break;
      case WorkloadId::RNN1:
        wl.layers.push_back(gemmLayer("step", batch, 5120, 2560));
        break;
      case WorkloadId::RNN2:
        wl.layers.push_back(gemmLayer("step", batch, 2048, 4096));
        break;
      case WorkloadId::RNN3:
        wl.layers.push_back(gemmLayer("step", batch, 4096, 8192));
        break;
    }
    return wl;
}

} // namespace neummu
