/**
 * @file
 * Open-loop serving engine: drives a System with an arrival-process
 * request stream routed over churning tenants, and reports SLO-grade
 * latency observability (HDR-histogram quantiles, windowed
 * throughput/goodput, queue-depth series) through the standard stats
 * dump.
 *
 * Unlike the closed-loop Workload drivers, the request generator
 * never waits for the system: arrivals keep coming at the configured
 * rate whether or not earlier requests finished, so queueing delay --
 * the dominant term of tail latency under load -- is measured, not
 * hidden. This is the steady-state multi-tenant NPU pool NeuMMU
 * motivates (Section I) observed the way a production serving stack
 * would observe it.
 *
 * Determinism: all serving machinery (arrival events, routing,
 * dispatch, tenant churn) runs on the hub event queue, and the System
 * auto-raises sim.hubNpus to cover every serving slot, so the queue
 * partition -- and therefore the dump, byte for byte -- is identical
 * for any sim.shards >= 1 and any thread count. The arrival timestamp
 * sequence itself is a pure function of (config, seed) and is
 * identical even across the legacy (shards = 0) and sharded kernels.
 */

#ifndef NEUMMU_SERVING_SERVING_ENGINE_HH
#define NEUMMU_SERVING_SERVING_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "npu/tile.hh"
#include "serving/arrival.hh"
#include "serving/serve_config.hh"
#include "serving/tenant.hh"
#include "workloads/request_model.hh"

namespace neummu {

class System;

namespace trace {
class TraceBuffer;
}

namespace serving {

/** Point-in-time SLO summary (the neummu_serve report surface). */
struct ServeReport
{
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    /** Arrivals dropped at a full slot queue (serve.queueLimit). */
    std::uint64_t dropped = 0;
    /** Arrivals with no routable tenant (all draining/retired). */
    std::uint64_t unrouted = 0;
    std::uint64_t sloViolations = 0;
    std::uint64_t admitted = 0;
    std::uint64_t retired = 0;
    std::uint64_t liveTenants = 0;

    double meanLatency = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    /** Fraction of completions meeting the SLO (1.0 when idle). */
    double goodput = 1.0;

    struct TenantLine
    {
        std::string name;
        unsigned slot = 0;
        std::uint64_t completed = 0;
        std::uint64_t violations = 0;
        std::uint64_t pending = 0;
        bool draining = false;
    };
    /** Live tenants in name order. */
    std::vector<TenantLine> tenants;
};

/**
 * Owned by System when SystemConfig.serve.enabled. The Scheduler
 * starts it alongside any closed-loop workloads; it then generates
 * arrivals until the run's cycle limit. Counters and distributions
 * land in the registry as "<system>.serving.*" plus one dynamic group
 * per live tenant.
 */
class ServingEngine
{
  public:
    /**
     * Compiles serve.workload into a RequestModel (throws
     * WorkloadError on a bad spec). Construct after the System's
     * NPUs and paging engine exist; one engine per System.
     */
    ServingEngine(System &system, const ServeConfig &cfg);

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Admit the initial tenant cohort and schedule the first arrival
     * and the window sampler. Call exactly once, at tick 0, before
     * running; open-loop runs need a finite run limit.
     */
    void start();
    bool started() const { return _started; }

    const ServeConfig &config() const { return _cfg; }
    const RequestModel &model() const { return _model; }
    /** NPU slots serving requests. */
    const std::vector<unsigned> &slots() const { return _slots; }

    // --- Live counters (also mirrored into "<sys>.serving") --------
    std::uint64_t arrivals() const { return _arrivals; }
    std::uint64_t completed() const { return _completed; }
    std::uint64_t dropped() const { return _dropped; }
    std::uint64_t unrouted() const { return _unrouted; }
    std::uint64_t sloViolations() const { return _violations; }
    std::uint64_t admitted() const { return _tenants.admitted(); }
    std::uint64_t retired() const { return _tenants.retired(); }
    std::uint64_t liveTenants() const { return _tenants.live(); }

    /**
     * FNV-1a digest over the arrival tick sequence. A pure function
     * of (arrival config, seed): identical across reps, worker
     * counts, and every sim.shards setting including the legacy
     * kernel -- the open-loop invariance tests key off it.
     */
    std::uint64_t arrivalDigest() const { return _digest; }

    /** Summarize the current state (refreshes nothing). */
    ServeReport report() const;

    stats::Group &stats() { return _stats; }

    /** Mirror live counters into the stats group before a dump. */
    void refreshStats();

    /** Attach a lifecycle trace buffer (the hub queue's; System
     *  wiring). Requests trace under requestTag keys, one parent
     *  span per served request with queue/service children. */
    void setTrace(trace::TraceBuffer *buf) { _trace = buf; }

  private:
    struct PendingRequest
    {
        Tenant *tenant = nullptr;
        Tick arrived = 0;
        /** Enqueue ordinal: the request's trace identity. */
        std::uint64_t seq = 0;
    };

    void scheduleArrival(Tick at);
    void onArrival(Tick at);
    void tryDispatch(unsigned slot);
    void onRequestDone(unsigned slot, PendingRequest req,
                       Tick dispatched, Tick done);
    void maybeRetire(Tenant &tenant, Tick at);
    void admitReplacement(Tick at);
    void sampleWindow();

    System &_sys;
    ServeConfig _cfg;
    RequestModel _model;
    std::vector<unsigned> _slots;
    TenantManager _tenants;
    std::unique_ptr<ArrivalProcess> _arrival;
    /** Tenant-routing stream, independent of the arrival clock. */
    Rng _pickRng;

    /** Per-slot FIFO of requests waiting for the slot's DMA. An
     *  ArenaQueue keeps one retained buffer per slot instead of
     *  std::deque's chunked allocation churn. */
    std::vector<ArenaQueue<PendingRequest>> _queues;
    std::vector<VaRun> _runs;

    bool _started = false;
    std::uint64_t _arrivals = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _unrouted = 0;
    std::uint64_t _violations = 0;
    std::uint64_t _digest = 14695981039346656037ull;
    /** Earliest tick the next replacement admission may happen. */
    Tick _nextAdmitAt = 0;
    /** Enqueued-request ordinal (deterministic: hub-queue order). */
    std::uint64_t _enqueued = 0;
    trace::TraceBuffer *_trace = nullptr;

    std::uint64_t _windowArrivals = 0;
    std::uint64_t _windowCompleted = 0;
    std::uint64_t _windowGood = 0;

    stats::Group _stats;
    stats::Histogram *_latency = nullptr;
    stats::Histogram *_queueWait = nullptr;
    stats::Histogram *_service = nullptr;
    stats::Series *_seriesArrivals = nullptr;
    stats::Series *_seriesThroughput = nullptr;
    stats::Series *_seriesGoodput = nullptr;
    stats::Series *_seriesQueueDepth = nullptr;
};

} // namespace serving
} // namespace neummu

#endif // NEUMMU_SERVING_SERVING_ENGINE_HH
