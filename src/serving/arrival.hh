/**
 * @file
 * Open-loop request arrival processes. An ArrivalProcess is a pure
 * generator: it owns its Rng stream and produces a strictly
 * increasing sequence of arrival ticks with no feedback from the
 * simulation, so the timestamp sequence for a given (config, seed)
 * pair is identical regardless of worker count, shard count, or how
 * far behind the served system is running -- the defining property of
 * open-loop load generation and what makes the serving dump
 * byte-reproducible across `sim.shards` settings.
 */

#ifndef NEUMMU_SERVING_ARRIVAL_HH
#define NEUMMU_SERVING_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace neummu {
namespace serving {

/** Shape of the request arrival process. */
enum class ArrivalKind
{
    /** Evenly spaced arrivals at the configured mean rate. */
    Fixed,
    /** Memoryless arrivals (exponential inter-arrival gaps). */
    Poisson,
    /**
     * Two-state Markov-modulated Poisson process: a calm state at the
     * base rate and a burst state at burstRatio x the base rate, with
     * exponentially distributed dwell times in each state.
     */
    Bursty,
    /**
     * Nonhomogeneous Poisson process whose rate follows a sinusoidal
     * schedule (the classic day/night load curve), sampled by
     * Lewis-Shedler thinning.
     */
    Diurnal,
};

/** Canonical lower-case name for @p kind. */
const char *arrivalKindName(ArrivalKind kind);

/** Parse @p name into @p out; false when unrecognized. */
bool arrivalKindFromName(const std::string &name, ArrivalKind &out);

/** All valid arrival kind names, for error enumeration. */
const std::vector<std::string> &arrivalKindNames();

/** Knobs shared by every arrival kind (unused ones are ignored). */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean request rate, in requests per million cycles. */
    double ratePerMcycle = 200.0;
    /** Bursty: burst-state rate as a multiple of the base rate. */
    double burstRatio = 8.0;
    /** Bursty: mean dwell in the burst state, cycles. */
    std::uint64_t burstDwellCycles = 200000;
    /** Bursty: mean dwell in the calm state, cycles. */
    std::uint64_t calmDwellCycles = 800000;
    /** Diurnal: period of one full rate cycle, cycles. */
    std::uint64_t diurnalPeriodCycles = 4000000;
    /** Diurnal: peak-to-mean rate swing, in [0, 1]. */
    double diurnalAmplitude = 0.8;
};

/**
 * Generator of a deterministic, strictly increasing arrival-tick
 * sequence. next() returns the absolute tick of the next request.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Absolute tick of the next arrival; strictly increasing. */
    virtual Tick next() = 0;

    /** Build the process @p cfg describes, seeded with @p seed. */
    static std::unique_ptr<ArrivalProcess>
    make(const ArrivalConfig &cfg, std::uint64_t seed);
};

} // namespace serving
} // namespace neummu

#endif // NEUMMU_SERVING_ARRIVAL_HH
