#include "serving/tenant.hh"

#include <algorithm>

#include "common/logging.hh"
#include "system/system.hh"

namespace neummu {
namespace serving {

namespace {

std::string
tenantName(std::uint64_t id)
{
    std::string digits = std::to_string(id);
    if (digits.size() < 5)
        digits.insert(0, 5 - digits.size(), '0');
    return "t" + digits;
}

} // namespace

TenantManager::TenantManager(System &system, const ServeConfig &cfg,
                             const RequestModel &model,
                             std::vector<unsigned> slots)
    : _sys(system), _cfg(cfg), _model(model), _slots(std::move(slots))
{
    NEUMMU_ASSERT(!_slots.empty(), "tenant manager needs serving slots");
}

std::string
TenantManager::statsGroupName(const std::string &tenant_name) const
{
    const std::string &base = _sys.config().name;
    const std::string prefix =
        base.empty() ? "serving" : base + ".serving";
    return prefix + "." + tenant_name;
}

Tenant *
TenantManager::admit()
{
    if (_cfg.maxAdmissions && _admitted >= _cfg.maxAdmissions)
        return nullptr;

    auto tenant = std::make_unique<Tenant>();
    tenant->id = _admitted;
    tenant->name = tenantName(tenant->id);
    tenant->slot = _slots[tenant->id % _slots.size()];
    // The access stream is keyed by the tenant NAME, not the slot, so
    // re-admissions are fresh streams and slot remapping experiments
    // do not silently correlate tenants.
    tenant->rng = Rng(deriveSeed(
        _sys.config().seed, hashString("serve.tenant." + tenant->name)));

    if (_cfg.demandPaged) {
        NEUMMU_ASSERT(_sys.hasPagingEngine(),
                      "serve.demandPaged needs paging.enabled");
        tenant->segment = _sys.addressSpace().allocateUnbacked(
            tenant->name + ".footprint", _model.footprintBytes,
            _sys.config().pageShift);
    } else {
        tenant->segment = _sys.addressSpace().allocateBacked(
            tenant->name + ".footprint", _model.footprintBytes,
            _sys.hbmNode(tenant->slot), _sys.config().pageShift);
    }

    stats::Group &g = _sys.statsRegistry().dynamicGroup(
        statsGroupName(tenant->name));
    g.scalar("slot").set(double(tenant->slot));
    tenant->completedStat = &g.scalar("completed");
    tenant->violationsStat = &g.scalar("sloViolations");
    tenant->droppedStat = &g.scalar("dropped");
    tenant->latencyStat = &g.average("latencyCycles");

    Tenant *out = tenant.get();
    _tenants.emplace(tenant->id, std::move(tenant));
    _active.push_back(out);
    _admitted++;
    return out;
}

void
TenantManager::beginDrain(Tenant &tenant)
{
    if (tenant.draining)
        return;
    tenant.draining = true;
    _active.erase(std::remove(_active.begin(), _active.end(), &tenant),
                  _active.end());
}

void
TenantManager::retire(Tenant &tenant)
{
    NEUMMU_ASSERT(tenant.draining && tenant.pending == 0,
                  "retiring tenant '" + tenant.name +
                      "' with requests still pending");
    _sys.releaseSegment(tenant.segment, tenant.slot);
    _sys.statsRegistry().removeDynamicGroup(
        statsGroupName(tenant.name));
    _tenants.erase(tenant.id);
    _retired++;
}

std::vector<const Tenant *>
TenantManager::liveTenants() const
{
    std::vector<const Tenant *> out;
    out.reserve(_tenants.size());
    for (const auto &[id, tenant] : _tenants)
        out.push_back(tenant.get());
    // _tenants is keyed by admission id; names embed the id
    // zero-padded, so id order IS name order.
    return out;
}

} // namespace serving
} // namespace neummu
