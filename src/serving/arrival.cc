#include "serving/arrival.hh"

#include <cmath>

namespace neummu {
namespace serving {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Fixed: return "fixed";
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::Diurnal: return "diurnal";
    }
    return "?";
}

bool
arrivalKindFromName(const std::string &name, ArrivalKind &out)
{
    if (name == "fixed") {
        out = ArrivalKind::Fixed;
    } else if (name == "poisson") {
        out = ArrivalKind::Poisson;
    } else if (name == "bursty") {
        out = ArrivalKind::Bursty;
    } else if (name == "diurnal") {
        out = ArrivalKind::Diurnal;
    } else {
        return false;
    }
    return true;
}

const std::vector<std::string> &
arrivalKindNames()
{
    static const std::vector<std::string> names = {
        "fixed", "poisson", "bursty", "diurnal",
    };
    return names;
}

namespace {

/** Requests per cycle from the per-Mcycle knob, floored at ~0. */
double
perCycleRate(double rate_per_mcycle)
{
    const double r = rate_per_mcycle / 1e6;
    return r > 1e-12 ? r : 1e-12;
}

/**
 * Exponentially distributed gap with mean 1/rate, rounded up so every
 * arrival advances time by at least one tick (strict monotonicity is
 * what lets callers schedule each arrival as its own event).
 */
Tick
expGap(Rng &rng, double rate)
{
    const double u = rng.uniform();
    const double gap = -std::log(1.0 - u) / rate;
    if (gap < 1.0)
        return 1;
    if (gap >= double(maxTick / 2))
        return maxTick / 2;
    return Tick(std::ceil(gap));
}

class FixedArrival : public ArrivalProcess
{
  public:
    explicit FixedArrival(const ArrivalConfig &cfg)
    {
        const double gap = 1.0 / perCycleRate(cfg.ratePerMcycle);
        _gap = gap < 1.0 ? 1 : Tick(std::llround(gap));
    }

    Tick
    next() override
    {
        _now += _gap;
        return _now;
    }

  private:
    Tick _gap;
    Tick _now = 0;
};

class PoissonArrival : public ArrivalProcess
{
  public:
    PoissonArrival(const ArrivalConfig &cfg, std::uint64_t seed)
        : _rate(perCycleRate(cfg.ratePerMcycle)), _rng(seed)
    {
    }

    Tick
    next() override
    {
        _now += expGap(_rng, _rate);
        return _now;
    }

  private:
    double _rate;
    Rng _rng;
    Tick _now = 0;
};

class BurstyArrival : public ArrivalProcess
{
  public:
    BurstyArrival(const ArrivalConfig &cfg, std::uint64_t seed)
        : _calmRate(perCycleRate(cfg.ratePerMcycle)),
          _burstRate(_calmRate *
                     (cfg.burstRatio < 1.0 ? 1.0 : cfg.burstRatio)),
          _burstDwell(cfg.burstDwellCycles ? cfg.burstDwellCycles : 1),
          _calmDwell(cfg.calmDwellCycles ? cfg.calmDwellCycles : 1),
          _rng(seed)
    {
        _switchAt = expGap(_rng, 1.0 / double(_calmDwell));
    }

    Tick
    next() override
    {
        // Draw in the current state; if the candidate lands past the
        // state switch, advance to the switch and redraw (the
        // exponential's memorylessness makes the redraw exact).
        for (;;) {
            const double rate = _inBurst ? _burstRate : _calmRate;
            const Tick candidate = _now + expGap(_rng, rate);
            if (candidate <= _switchAt) {
                _now = candidate;
                return _now;
            }
            _now = _switchAt;
            _inBurst = !_inBurst;
            const std::uint64_t dwell =
                _inBurst ? _burstDwell : _calmDwell;
            _switchAt = _now + expGap(_rng, 1.0 / double(dwell));
        }
    }

  private:
    double _calmRate;
    double _burstRate;
    std::uint64_t _burstDwell;
    std::uint64_t _calmDwell;
    Rng _rng;
    Tick _now = 0;
    Tick _switchAt = 0;
    bool _inBurst = false;
};

class DiurnalArrival : public ArrivalProcess
{
  public:
    DiurnalArrival(const ArrivalConfig &cfg, std::uint64_t seed)
        : _meanRate(perCycleRate(cfg.ratePerMcycle)),
          _amplitude(std::min(std::max(cfg.diurnalAmplitude, 0.0), 1.0)),
          _period(cfg.diurnalPeriodCycles ? cfg.diurnalPeriodCycles
                                          : 1),
          _rng(seed)
    {
    }

    Tick
    next() override
    {
        // Lewis-Shedler thinning: homogeneous candidates at the peak
        // rate, each kept with probability rate(t) / peakRate.
        constexpr double twoPi = 6.283185307179586476925286766559;
        const double peak = _meanRate * (1.0 + _amplitude);
        for (;;) {
            _now += expGap(_rng, peak);
            const double phase =
                twoPi * double(_now % _period) / double(_period);
            const double rate =
                _meanRate * (1.0 + _amplitude * std::sin(phase));
            if (_rng.uniform() * peak <= rate)
                return _now;
        }
    }

  private:
    double _meanRate;
    double _amplitude;
    std::uint64_t _period;
    Rng _rng;
    Tick _now = 0;
};

} // namespace

std::unique_ptr<ArrivalProcess>
ArrivalProcess::make(const ArrivalConfig &cfg, std::uint64_t seed)
{
    switch (cfg.kind) {
      case ArrivalKind::Fixed:
        return std::make_unique<FixedArrival>(cfg);
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrival>(cfg, seed);
      case ArrivalKind::Bursty:
        return std::make_unique<BurstyArrival>(cfg, seed);
      case ArrivalKind::Diurnal:
        return std::make_unique<DiurnalArrival>(cfg, seed);
    }
    return std::make_unique<PoissonArrival>(cfg, seed);
}

} // namespace serving
} // namespace neummu
