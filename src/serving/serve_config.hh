/**
 * @file
 * Configuration of the open-loop serving layer. Lives in its own
 * header so SystemConfig can embed it without pulling in the engine.
 */

#ifndef NEUMMU_SERVING_SERVE_CONFIG_HH
#define NEUMMU_SERVING_SERVE_CONFIG_HH

#include <cstdint>
#include <string>

#include "serving/arrival.hh"

namespace neummu {
namespace serving {

/** Knobs of the open-loop serving layer (`serve.*` binder keys). */
struct ServeConfig
{
    /** Master switch; off keeps the System purely closed-loop. */
    bool enabled = false;

    /** Arrival process driving request generation. */
    ArrivalConfig arrival{};

    /**
     * Request footprint spec, request_model grammar
     * ("embedding:footprint=4M,accesses=64").
     */
    std::string workload = "embedding";

    /** NPU slots serving requests; 0 means every slot. */
    unsigned slots = 0;

    /** Concurrent tenants held at steady state. */
    unsigned tenants = 4;

    /**
     * Requests after which a tenant retires (its address space is
     * torn down and a fresh tenant admitted); 0 disables churn.
     */
    std::uint64_t tenantLifetimeRequests = 0;

    /** Minimum gap between replacement admissions, cycles. */
    std::uint64_t admitGapCycles = 0;

    /** Cap on total admissions (0 = unlimited), a churn safety rail. */
    std::uint64_t maxAdmissions = 0;

    /**
     * Leave tenant footprints unbacked and fault them in through the
     * PagingEngine (which must be enabled); tenants then live on the
     * paging home slot so eviction/shootdown churn continuously.
     */
    bool demandPaged = false;

    /** SLO target: a request slower than this violates, cycles. */
    std::uint64_t sloLatencyCycles = 500000;

    /** Windowed-metric sampling period, cycles. */
    std::uint64_t windowCycles = 250000;

    /**
     * Per-slot pending-request cap; arrivals beyond it are dropped
     * (counted, never silently). 0 = unbounded queues.
     */
    std::uint64_t queueLimit = 0;
};

} // namespace serving
} // namespace neummu

#endif // NEUMMU_SERVING_SERVE_CONFIG_HH
