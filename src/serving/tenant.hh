/**
 * @file
 * Tenant lifecycle for serving mode. A tenant is one served model
 * instance: a private VA footprint (its address space slice), a
 * deterministic access-stream Rng, and per-tenant SLO counters. The
 * TenantManager admits tenants (allocating footprints), drains them
 * (they stop receiving new requests but finish what they have), and
 * retires them -- tearing the footprint down page by page through the
 * System's unmap -> shootdown -> frame-free discipline, so steady-state
 * churn continuously exercises FrameAllocator recycling, page-table
 * node reclaim, and system-wide translation shootdown.
 *
 * Per-tenant stats live in the registry's *dynamic* section (created
 * at admit, removed at retire), whose name-sorted dump order is
 * independent of churn timing.
 */

#ifndef NEUMMU_SERVING_TENANT_HH
#define NEUMMU_SERVING_TENANT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "serving/serve_config.hh"
#include "vm/address_space.hh"
#include "workloads/request_model.hh"

namespace neummu {

class System;

namespace serving {

/** One live served model instance. */
struct Tenant
{
    /** Admission index; also the identity in stats/digests. */
    std::uint64_t id = 0;
    /** Zero-padded name ("t00042"), stable sort order in dumps. */
    std::string name;
    /** NPU slot serving this tenant's requests. */
    unsigned slot = 0;
    /** Private VA footprint requests range over. */
    Segment segment;
    /** Deterministic access stream (seeded from the tenant name). */
    Rng rng;

    /** Arrivals routed to this tenant. */
    std::uint64_t routed = 0;
    /** Requests handed to the DMA (the stride-sequence cursor). */
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    /** Requests queued or in flight. */
    std::uint64_t pending = 0;
    /** Draining: no longer routed to; retires when pending hits 0. */
    bool draining = false;

    // Cached handles into the tenant's dynamic stats group.
    stats::Scalar *completedStat = nullptr;
    stats::Scalar *violationsStat = nullptr;
    stats::Scalar *droppedStat = nullptr;
    stats::Average *latencyStat = nullptr;
};

/**
 * Admits, drains, and retires tenants on one System. Admission order,
 * slot placement (round-robin over the serving slots), and footprint
 * layout are pure functions of the admission index, so churn is
 * reproducible run to run.
 */
class TenantManager
{
  public:
    TenantManager(System &system, const ServeConfig &cfg,
                  const RequestModel &model,
                  std::vector<unsigned> slots);

    /**
     * Admit the next tenant: allocate its footprint (eagerly backed
     * on its slot's HBM node, or unbacked for demand paging), create
     * its dynamic stats group, and add it to the routable set.
     * @return nullptr once serve.maxAdmissions is exhausted.
     */
    Tenant *admit();

    /** Stop routing new requests to @p tenant. */
    void beginDrain(Tenant &tenant);

    /**
     * Destroy @p tenant: release every mapped footprint page
     * (unmap -> shootdown -> frame free) and drop its stats group.
     * @pre tenant.draining and tenant.pending == 0.
     */
    void retire(Tenant &tenant);

    /** Routable (non-draining) tenants, in admission order. */
    const std::vector<Tenant *> &active() const { return _active; }

    std::uint64_t admitted() const { return _admitted; }
    std::uint64_t retired() const { return _retired; }
    /** Tenants currently alive (active + draining). */
    std::uint64_t live() const { return _tenants.size(); }

    /** Live tenants in name order (report/debug surface). */
    std::vector<const Tenant *> liveTenants() const;

  private:
    std::string statsGroupName(const std::string &tenant_name) const;

    System &_sys;
    const ServeConfig &_cfg;
    const RequestModel &_model;
    std::vector<unsigned> _slots;
    std::map<std::uint64_t, std::unique_ptr<Tenant>> _tenants;
    std::vector<Tenant *> _active;
    std::uint64_t _admitted = 0;
    std::uint64_t _retired = 0;
};

} // namespace serving
} // namespace neummu

#endif // NEUMMU_SERVING_TENANT_HH
