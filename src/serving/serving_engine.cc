#include "serving/serving_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "system/system.hh"
#include "trace/trace_engine.hh"

namespace neummu {
namespace serving {

namespace {

std::string
servingStatsName(const System &sys)
{
    const std::string &base = sys.config().name;
    return base.empty() ? "serving" : base + ".serving";
}

/** Serving slots: the first serve.slots NPUs (0 = all of them). */
std::vector<unsigned>
servingSlots(const System &sys, const ServeConfig &cfg)
{
    const unsigned count =
        cfg.slots ? std::min(cfg.slots, sys.numNpus()) : sys.numNpus();
    std::vector<unsigned> slots(count);
    for (unsigned i = 0; i < count; i++)
        slots[i] = i;
    return slots;
}

/** FNV-1a over the 8 bytes of @p v, little-endian byte order. */
std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

ServingEngine::ServingEngine(System &system, const ServeConfig &cfg)
    : _sys(system), _cfg(cfg),
      _model(requestModelFromSpecChecked(cfg.workload)),
      _slots(servingSlots(system, cfg)),
      _tenants(system, _cfg, _model, _slots),
      _arrival(ArrivalProcess::make(
          cfg.arrival,
          deriveSeed(system.config().seed, hashString("serve.arrival")))),
      _pickRng(
          deriveSeed(system.config().seed, hashString("serve.pick"))),
      _stats(servingStatsName(system))
{
    NEUMMU_ASSERT(_cfg.tenants >= 1, "serve.tenants must be >= 1");
    NEUMMU_ASSERT(_cfg.windowCycles >= 1,
                  "serve.window must be >= 1 cycle");
    if (_cfg.demandPaged) {
        NEUMMU_ASSERT(_sys.hasPagingEngine(),
                      "serve.demandPaged needs paging.enabled");
    }
    // Tenant churn mutates host state (page table, frame allocators)
    // that lives on the hub queue; the System auto-raises sim.hubNpus
    // to cover the serving slots, so this only fires when the two
    // ever disagree.
    for (const unsigned slot : _slots)
        _sys.requireHubResident(slot, "serving slot " +
                                          std::to_string(slot));
    _queues.resize(_slots.size());
}

void
ServingEngine::start()
{
    NEUMMU_ASSERT(!_started, "serving engine started twice");
    _started = true;

    // Segment teardown at retire follows the unmap -> shootdown
    // discipline; lifecycle bookkeeping keeps vpnBusy() honest while
    // responses are on the wire.
    _sys.mmu().enableLifecycle();

    _latency = &_stats.histogram("latencyCycles");
    _queueWait = &_stats.histogram("queueWaitCycles");
    _service = &_stats.histogram("serviceCycles");
    _seriesArrivals =
        &_stats.series("windowArrivals", stats::Series::Merge::Sum);
    _seriesThroughput =
        &_stats.series("windowCompleted", stats::Series::Merge::Sum);
    _seriesGoodput =
        &_stats.series("windowGoodput", stats::Series::Merge::Sum);
    _seriesQueueDepth =
        &_stats.series("windowQueueDepth", stats::Series::Merge::Mean);

    for (unsigned i = 0; i < _cfg.tenants; i++) {
        if (!_tenants.admit())
            break;
    }
    _nextAdmitAt = _cfg.admitGapCycles;

    scheduleArrival(_arrival->next());
    _sys.eventQueue().scheduleIn(_cfg.windowCycles,
                                 [this] { sampleWindow(); });
}

void
ServingEngine::scheduleArrival(Tick at)
{
    _sys.eventQueue().schedule(at, [this, at] { onArrival(at); });
}

void
ServingEngine::onArrival(Tick at)
{
    NEUMMU_PROF_SCOPE(_sys.eventQueue().profiler(),
                      ProfSubsystem::Serving);
    _arrivals++;
    _windowArrivals++;
    _digest = fnvMix(_digest, at);

    const std::vector<Tenant *> &active = _tenants.active();
    if (active.empty()) {
        _unrouted++;
    } else {
        Tenant *tenant = active[_pickRng.range(active.size())];
        tenant->routed++;
        if (_cfg.queueLimit &&
            _queues[tenant->slot].size() >= _cfg.queueLimit) {
            _dropped++;
            *tenant->droppedStat += 1.0;
        } else {
            _queues[tenant->slot].push_back({tenant, at, _enqueued++});
            tenant->pending++;
            tryDispatch(tenant->slot);
        }
        if (_cfg.tenantLifetimeRequests &&
            tenant->routed >= _cfg.tenantLifetimeRequests &&
            !tenant->draining) {
            _tenants.beginDrain(*tenant);
            // Every routed request may already be done (or dropped);
            // then nothing is left to trigger the retire.
            maybeRetire(*tenant, at);
        }
    }

    scheduleArrival(_arrival->next());
}

void
ServingEngine::tryDispatch(unsigned slot)
{
    NEUMMU_PROF_SCOPE(_sys.eventQueue().profiler(),
                      ProfSubsystem::Serving);
    ArenaQueue<PendingRequest> &q = _queues[slot];
    if (q.empty() || _sys.dma(slot).busy())
        return;

    PendingRequest req = q.front();
    q.pop_front();
    const Tick dispatched = _sys.eventQueue().now();

    Tenant &tenant = *req.tenant;
    buildRequestRuns(_model, tenant.segment, tenant.dispatched,
                     tenant.rng, _runs);
    tenant.dispatched++;

    _sys.dma(slot).fetch(
        std::move(_runs), [this, slot, req, dispatched](Tick done) {
            onRequestDone(slot, req, dispatched, done);
        });
    _runs.clear();
}

void
ServingEngine::onRequestDone(unsigned slot, PendingRequest req,
                             Tick dispatched, Tick done)
{
    Tenant &tenant = *req.tenant;
    const Tick latency = done - req.arrived;
    _latency->record(latency);
    _queueWait->record(dispatched - req.arrived);
    _service->record(done - dispatched);

    if (_trace) {
        // The whole request lifecycle is known here, so the parent
        // span and its queue/service children are recorded in one
        // shot -- no open-span tracking on the arrival path. aux
        // carries (tenant ordinal, slot) for per-tenant attribution.
        const std::uint64_t key = trace::requestTag | req.seq;
        const std::uint32_t aux =
            std::uint32_t((tenant.id & 0xFFFF) << 16 | tenant.slot);
        _trace->span(key, trace::Stage::Request, req.arrived, done,
                     aux);
        _trace->span(key, trace::Stage::ReqQueue, req.arrived,
                     dispatched, aux);
        _trace->span(key, trace::Stage::ReqService, dispatched, done,
                     aux);
        _trace->complete(key, latency);
    }

    _completed++;
    _windowCompleted++;
    tenant.completed++;
    NEUMMU_ASSERT(tenant.pending > 0, "request completion underflow");
    tenant.pending--;
    *tenant.completedStat += 1.0;
    tenant.latencyStat->sample(double(latency));

    if (latency > _cfg.sloLatencyCycles) {
        _violations++;
        *tenant.violationsStat += 1.0;
    } else {
        _windowGood++;
    }

    maybeRetire(tenant, done);
    tryDispatch(slot);
}

void
ServingEngine::maybeRetire(Tenant &tenant, Tick at)
{
    if (!tenant.draining || tenant.pending != 0)
        return;
    _tenants.retire(tenant);
    admitReplacement(at);
}

void
ServingEngine::admitReplacement(Tick at)
{
    if (_cfg.maxAdmissions &&
        _tenants.admitted() >= _cfg.maxAdmissions) {
        return;
    }
    const Tick when = std::max(at, _nextAdmitAt);
    _nextAdmitAt = when + _cfg.admitGapCycles;
    if (when <= at)
        _tenants.admit();
    else
        _sys.eventQueue().schedule(when, [this] { _tenants.admit(); });
}

void
ServingEngine::sampleWindow()
{
    _seriesArrivals->append(double(_windowArrivals));
    _seriesThroughput->append(double(_windowCompleted));
    _seriesGoodput->append(double(_windowGood));
    std::uint64_t depth = 0;
    for (const ArenaQueue<PendingRequest> &q : _queues)
        depth += q.size();
    _seriesQueueDepth->append(double(depth));
    _windowArrivals = 0;
    _windowCompleted = 0;
    _windowGood = 0;
    _sys.eventQueue().scheduleIn(_cfg.windowCycles,
                                 [this] { sampleWindow(); });
}

ServeReport
ServingEngine::report() const
{
    ServeReport r;
    r.arrivals = _arrivals;
    r.completed = _completed;
    r.dropped = _dropped;
    r.unrouted = _unrouted;
    r.sloViolations = _violations;
    r.admitted = _tenants.admitted();
    r.retired = _tenants.retired();
    r.liveTenants = _tenants.live();
    if (_latency && _latency->count()) {
        r.meanLatency = _latency->mean();
        r.p50 = _latency->quantile(0.5);
        r.p90 = _latency->quantile(0.9);
        r.p99 = _latency->quantile(0.99);
        r.p999 = _latency->quantile(0.999);
    }
    r.goodput = _completed
                    ? double(_completed - _violations) /
                          double(_completed)
                    : 1.0;
    for (const Tenant *tenant : _tenants.liveTenants()) {
        ServeReport::TenantLine line;
        line.name = tenant->name;
        line.slot = tenant->slot;
        line.completed = tenant->completed;
        line.violations =
            std::uint64_t(tenant->violationsStat->value());
        line.pending = tenant->pending;
        line.draining = tenant->draining;
        r.tenants.push_back(std::move(line));
    }
    return r;
}

void
ServingEngine::refreshStats()
{
    const auto set = [this](const char *stat, double v) {
        _stats.scalar(stat).set(v);
    };
    set("arrivals", double(_arrivals));
    set("completed", double(_completed));
    set("dropped", double(_dropped));
    set("unrouted", double(_unrouted));
    set("sloViolations", double(_violations));
    set("sloLatencyCycles", double(_cfg.sloLatencyCycles));
    set("admitted", double(_tenants.admitted()));
    set("retired", double(_tenants.retired()));
    set("liveTenants", double(_tenants.live()));
    // The 64-bit digest split into exactly representable halves (a
    // double carries 53 mantissa bits).
    set("arrivalDigestLo", double(_digest & 0xffffffffull));
    set("arrivalDigestHi", double(_digest >> 32));
    std::uint64_t depth = 0;
    for (const ArenaQueue<PendingRequest> &q : _queues)
        depth += q.size();
    set("queuedRequests", double(depth));
}

} // namespace serving
} // namespace neummu
