/**
 * @file
 * Tile descriptors exchanged between the tiler (workloads) and the
 * DMA engine / tile pipeline (npu).
 */

#ifndef NEUMMU_NPU_TILE_HH
#define NEUMMU_NPU_TILE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace neummu {

/**
 * One maximal contiguous virtual-address run of a tile: the tiles are
 * multi-dimensional tensors mapped onto linear memory, so a tile
 * decomposes into the minimum number of linearized transactions
 * (Section I) -- these are those transactions before burst splitting.
 */
struct VaRun
{
    Addr va = invalidAddr;
    std::uint64_t bytes = 0;
};

/** The work unit of the NPU pipeline: one tile's fetches + compute. */
struct TileWork
{
    /** Input-activation tile runs (fetched first, Fig. 3). */
    std::vector<VaRun> iaRuns;
    /** Weight tile runs (fetched after IA, Fig. 3). */
    std::vector<VaRun> wRuns;
    /** Compute-phase duration for this tile. */
    std::uint64_t computeCycles = 0;

    std::uint64_t
    fetchBytes() const
    {
        std::uint64_t b = 0;
        for (const auto &r : iaRuns)
            b += r.bytes;
        for (const auto &r : wRuns)
            b += r.bytes;
        return b;
    }
};

} // namespace neummu

#endif // NEUMMU_NPU_TILE_HH
