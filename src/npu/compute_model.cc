#include "npu/compute_model.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace neummu {

std::uint64_t
tileComputeCycles(const NpuConfig &cfg, std::uint64_t m, std::uint64_t k,
                  std::uint64_t n)
{
    NEUMMU_ASSERT(m > 0 && k > 0 && n > 0, "degenerate GEMM tile");
    switch (cfg.compute) {
      case ComputeKind::Systolic: {
        const std::uint64_t k_blocks = divCeil(k, cfg.systolicRows);
        const std::uint64_t n_blocks = divCeil(n, cfg.systolicCols);
        const std::uint64_t fill_drain =
            cfg.systolicRows + cfg.systolicCols;
        return k_blocks * n_blocks * m + fill_drain;
      }
      case ComputeKind::Spatial: {
        const std::uint64_t macs = m * k * n;
        constexpr std::uint64_t dispatch_overhead = 64;
        return divCeil(macs, cfg.spatialMacsPerCycle) + dispatch_overhead;
      }
    }
    NEUMMU_PANIC("unknown compute kind");
}

} // namespace neummu
