/**
 * @file
 * Compute-phase latency models for the two NPU substrates.
 */

#ifndef NEUMMU_NPU_COMPUTE_MODEL_HH
#define NEUMMU_NPU_COMPUTE_MODEL_HH

#include <cstdint>

#include "npu/npu_config.hh"

namespace neummu {

/**
 * Latency of computing one GEMM tile of (m x k) * (k x n).
 *
 * Systolic (weight-stationary, TPU-style): each 128x128 weight block
 * is double-buffered inside the array (per Google's weight-prefetch
 * patent), so blocks stream back to back; each block processes the m
 * activation rows in m cycles, plus one array fill+drain per tile.
 *
 * Spatial (DaDianNao/Eyeriss-class): a grid of vector-MAC PEs with an
 * aggregate throughput of spatialMacsPerCycle, plus a fixed dispatch
 * overhead per tile.
 */
std::uint64_t tileComputeCycles(const NpuConfig &cfg, std::uint64_t m,
                                std::uint64_t k, std::uint64_t n);

} // namespace neummu

#endif // NEUMMU_NPU_COMPUTE_MODEL_HH
