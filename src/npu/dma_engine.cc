#include "npu/dma_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "trace/trace_engine.hh"

namespace neummu {

DmaEngine::DmaEngine(std::string name, EventQueue &eq,
                     TranslationEngine &mmu, MemoryModel &mem,
                     DmaConfig cfg)
    : _name(std::move(name)), _eq(eq), _mmu(mmu), _mem(mem), _cfg(cfg),
      _burstBytesById(2 * cfg.inflightHint), _stats(_name),
      _sTranslationsIssued(_stats.scalar("translationsIssued")),
      _sStallCycles(_stats.scalar("stallCycles"))
{
    NEUMMU_ASSERT(cfg.burstBytes > 0, "zero DMA burst size");
    _mmu.setResponseCallback(
        [this](const TranslationResponse &resp) { onTranslation(resp); });
    _mmu.setWakeCallback([this] { onWake(); });
}

void
DmaEngine::fetch(std::vector<VaRun> runs, DoneCallback done)
{
    NEUMMU_ASSERT(!_active, "DMA engine supports one tile at a time");
    _active = true;
    _runs = std::move(runs);
    _runIdx = 0;
    _runOffset = 0;
    _issuedAll = _runs.empty();
    _inFlight = 0;
    _blocked = false;
    _done = std::move(done);

    if (_issuedAll) {
        // Degenerate empty fetch: complete immediately.
        _eq.scheduleIn(0, [this] { maybeFinish(); });
        return;
    }
    // The whole issue loop -- one translation request per cycle
    // (Section III-C) -- is one chain train: sub-event k is burst k's
    // issue slot, and the train re-arms for the next cycle exactly
    // like the old self-rescheduling event did.
    _issueScheduled = true;
    _eq.scheduleTrain(_eq.now(), 1,
                      [this](std::uint64_t) { return issueStep(); });
}

bool
DmaEngine::currentBurst(Addr &va, std::uint64_t &len) const
{
    if (_runIdx >= _runs.size())
        return false;
    const VaRun &run = _runs[_runIdx];
    va = run.va + _runOffset;
    const std::uint64_t remaining = run.bytes - _runOffset;
    // Clip at burst size and at the page boundary so every burst
    // requires exactly one translation.
    const std::uint64_t to_page_end =
        pageSize(_cfg.pageShift) - (va & pageOffsetMask(_cfg.pageShift));
    len = std::min({remaining, _cfg.burstBytes, to_page_end});
    return true;
}

void
DmaEngine::advance(std::uint64_t len)
{
    _runOffset += len;
    if (_runOffset >= _runs[_runIdx].bytes) {
        _runIdx++;
        _runOffset = 0;
    }
    if (_runIdx >= _runs.size())
        _issuedAll = true;
}

bool
DmaEngine::issueStep()
{
    NEUMMU_PROF_SCOPE(_eq.profiler(), ProfSubsystem::DmaIssue);
    if (!_active || _issuedAll) {
        _issueScheduled = false;
        return false;
    }

    Addr va = 0;
    std::uint64_t len = 0;
    const bool have = currentBurst(va, len);
    NEUMMU_ASSERT(have, "issue loop ran past the tile");

    const std::uint64_t id = _nextId++;
    const bool accepted = _mmu.translate(va, id);
    if (_traceHook)
        _traceHook(_eq.now(), va, len, accepted);
    if (!accepted) {
        // Translation bandwidth exhausted: the port blocks until the
        // MMU signals freed capacity (Section IV-A).
        if (!_blocked) {
            _blocked = true;
            _blockedSince = _eq.now();
        }
        _issueScheduled = false;
        return false;
    }

    _burstBytesById.insert(id, len);
    _inFlight++;
    _translations++;
    ++_sTranslationsIssued;
    if (_trace)
        _trace->open(_traceKeyBase | id, trace::Stage::Translation,
                     _eq.now());
    if (_hook)
        _hook(_eq.now(), va);
    advance(len);

    if (_issuedAll) {
        _issueScheduled = false;
        return false;
    }
    return true; // train re-arms: next burst issues next cycle
}

void
DmaEngine::onWake()
{
    if (!_blocked || _issueScheduled)
        return;
    _blocked = false;
    _stallCycles += _eq.now() - _blockedSince;
    _sStallCycles += double(_eq.now() - _blockedSince);
    // The rejected attempts burned ids, so the wait can't be pinned on
    // the id that eventually succeeds; charge it to the port's
    // credit-wait sentinel key instead.
    if (_trace && _eq.now() > _blockedSince)
        _trace->span(trace::creditWaitKey(_traceKeyBase),
                     trace::Stage::CreditWait, _blockedSince, _eq.now());
    _issueScheduled = true;
    _eq.scheduleTrain(_eq.now() + 1, 1,
                      [this](std::uint64_t) { return issueStep(); });
}

void
DmaEngine::onTranslation(const TranslationResponse &resp)
{
    NEUMMU_PROF_SCOPE(_eq.profiler(), ProfSubsystem::DmaData);
    const std::uint64_t *len_slot = _burstBytesById.find(resp.id);
    NEUMMU_ASSERT(len_slot, "translation response for unknown burst");
    const std::uint64_t len = *len_slot;
    _burstBytesById.erase(resp.id);
    if (_trace) {
        const std::uint64_t key = _traceKeyBase | resp.id;
        const Tick dur = _trace->close(key, trace::Stage::Translation,
                                       _eq.now());
        if (dur != maxTick)
            _trace->complete(key, dur);
    }

    // Launch the data read; completion lands the burst in the SPM.
    Tick data_at;
    {
        NEUMMU_PROF_SCOPE(_eq.profiler(), ProfSubsystem::Memory);
        data_at = _mem.access(_eq.now(), resp.pa, len, false);
    }
    _bytes += len;
    _eq.schedule(data_at, [this] {
        NEUMMU_ASSERT(_inFlight > 0, "burst completion underflow");
        _inFlight--;
        maybeFinish();
    });
}

void
DmaEngine::maybeFinish()
{
    if (!_active || !_issuedAll || _inFlight != 0)
        return;
    _active = false;
    auto done = std::move(_done);
    _done = nullptr;
    if (done)
        done(_eq.now());
}

} // namespace neummu
