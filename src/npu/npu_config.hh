/**
 * @file
 * Baseline NPU configuration (Table I) and alternative design points.
 */

#ifndef NEUMMU_NPU_NPU_CONFIG_HH
#define NEUMMU_NPU_NPU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace neummu {

/** Compute-substrate microarchitecture (Section VI-B). */
enum class ComputeKind
{
    /** Google TPU-style 128x128 weight-stationary systolic array. */
    Systolic,
    /** DaDianNao/Eyeriss-style grid of vector-MAC PEs. */
    Spatial,
};

/** NPU core parameters (defaults follow Table I). */
struct NpuConfig
{
    ComputeKind compute = ComputeKind::Systolic;
    /** Systolic array dimensions. */
    unsigned systolicRows = 128;
    unsigned systolicCols = 128;
    /** Spatial array: aggregate MACs per cycle (16x16 PEs x 16-wide). */
    unsigned spatialMacsPerCycle = 4096;
    /** Scratchpad capacity for activations (IA/OA buffer). */
    std::uint64_t iaSpmBytes = 15 * MiB;
    /** Scratchpad capacity for weights. */
    std::uint64_t wSpmBytes = 10 * MiB;
    /** Bytes per tensor element (bf16/int16-class datapath). */
    unsigned elemBytes = 2;
    /**
     * DMA burst size: maximal bytes per linearized memory transaction.
     * Each burst raises its own address translation, which is why the
     * number of translations exceeds the page divergence
     * (Section III-C): ~8 same-page bursts arrive during one walk,
     * matching the paper's PRMB saturation point of 8-32 slots.
     */
    std::uint64_t dmaBurstBytes = 512;

    /** Per-buffer tile budget under double buffering (Section III-C). */
    std::uint64_t iaTileBudget() const { return iaSpmBytes / 2; }
    std::uint64_t wTileBudget() const { return wSpmBytes / 2; }
};

} // namespace neummu

#endif // NEUMMU_NPU_NPU_CONFIG_HH
