/**
 * @file
 * The NPU's DMA unit. It decomposes tile runs into burst-sized,
 * page-bounded memory transactions, requests one address translation
 * per cycle (Section III-C), and launches the data reads as soon as
 * each translation returns, maximizing memory-level parallelism.
 * When the MMU's translation port blocks, the DMA stalls until the
 * MMU signals freed capacity.
 */

#ifndef NEUMMU_NPU_DMA_ENGINE_HH
#define NEUMMU_NPU_DMA_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_model.hh"
#include "mmu/translation.hh"
#include "npu/tile.hh"
#include "sim/event_queue.hh"

namespace neummu {

namespace trace {
class TraceBuffer;
}

/** DMA engine configuration. */
struct DmaConfig
{
    /** Maximal bytes per linearized memory transaction. */
    std::uint64_t burstBytes = 1024;
    /** Page size bursts are clipped to (one translation per burst). */
    unsigned pageShift = 12;
    /**
     * Capacity hint for the outstanding-burst tracker: an upper
     * bound on translations the MMU can hold in flight for this
     * port. Sized from the MMU config so the tracker never rehashes
     * in steady state (see FlatMap64::rehashCount()).
     */
    std::size_t inflightHint = 64;
};

/**
 * Fetches one tile at a time; the tile pipeline serializes fetches.
 */
class DmaEngine
{
  public:
    using DoneCallback = std::function<void(Tick)>;
    /** Observation hook: a translation was issued at @p tick for @p va. */
    using IssueHook = std::function<void(Tick, Addr)>;
    /**
     * Trace hook: every translation attempt, including ones the MMU
     * rejected (@p accepted false). Faithful enough to replay the
     * whole translation stream (see TraceRecorder / TraceWorkload).
     */
    using TraceHook =
        std::function<void(Tick, Addr, std::uint64_t, bool)>;

    DmaEngine(std::string name, EventQueue &eq, TranslationEngine &mmu,
              MemoryModel &mem, DmaConfig cfg);

    /**
     * Start fetching @p runs (already ordered: IA first, then W).
     * @p done fires at the tick the last byte lands in the SPM.
     * @pre !busy()
     */
    void fetch(std::vector<VaRun> runs, DoneCallback done);

    bool busy() const { return _active; }

    /** Install an optional per-translation observation hook (Fig. 7). */
    void setIssueHook(IssueHook hook) { _hook = std::move(hook); }

    /** Install an optional per-attempt trace hook (trace recording). */
    void setTraceHook(TraceHook hook) { _traceHook = std::move(hook); }

    /**
     * Attach a lifecycle trace buffer (System wiring). @p key_base is
     * this port's router client tag (client << clientShift), OR'd
     * onto raw DMA ids so trace keys match the tagged ids the MMU
     * sees. Null (the default) keeps tracing fully off this path.
     */
    void setTrace(trace::TraceBuffer *buf, std::uint64_t key_base)
    {
        _trace = buf;
        _traceKeyBase = key_base;
    }

    std::uint64_t translationsIssued() const { return _translations; }
    std::uint64_t bytesFetched() const { return _bytes; }
    /** Cycles the issue port spent blocked on the MMU. */
    std::uint64_t stallCycles() const { return _stallCycles; }
    stats::Group &stats() { return _stats; }

    /** Bursts with a translation in flight (tests/diagnostics). */
    std::size_t inflightBursts() const { return _burstBytesById.size(); }
    /** Peak outstanding-burst count (tests/diagnostics). */
    std::size_t burstPoolHighWater() const
    {
        return _burstBytesById.highWater();
    }
    /** Tracker rehashes; 0 when inflightHint was sized right. */
    std::size_t burstPoolRehashes() const
    {
        return _burstBytesById.rehashCount();
    }

  private:
    /**
     * One issue-train sub-event: attempt one burst's translation.
     * Returns true while the train should keep running (one request
     * per cycle); false when done, blocked, or the tile is fully
     * issued.
     */
    bool issueStep();
    void onTranslation(const TranslationResponse &resp);
    void onWake();
    bool currentBurst(Addr &va, std::uint64_t &len) const;
    void advance(std::uint64_t len);
    void maybeFinish();

    std::string _name;
    EventQueue &_eq;
    TranslationEngine &_mmu;
    MemoryModel &_mem;
    DmaConfig _cfg;

    // Fetch-in-progress state.
    bool _active = false;
    std::vector<VaRun> _runs;
    std::size_t _runIdx = 0;
    std::uint64_t _runOffset = 0;
    bool _issuedAll = false;
    std::uint64_t _inFlight = 0;
    bool _blocked = false;
    Tick _blockedSince = 0;
    bool _issueScheduled = false;
    DoneCallback _done;
    /** Outstanding translation id -> burst length (pooled slots). */
    FlatMap64<std::uint64_t> _burstBytesById;
    std::uint64_t _nextId = 0;

    IssueHook _hook;
    TraceHook _traceHook;
    trace::TraceBuffer *_trace = nullptr;
    std::uint64_t _traceKeyBase = 0;
    std::uint64_t _translations = 0;
    std::uint64_t _bytes = 0;
    std::uint64_t _stallCycles = 0;
    stats::Group _stats;
    /** Cached counters: the issue loop runs every cycle, so no
     *  per-call string-keyed stats lookups on the hot path. */
    stats::Scalar &_sTranslationsIssued;
    stats::Scalar &_sStallCycles;
};

} // namespace neummu

#endif // NEUMMU_NPU_DMA_ENGINE_HH
