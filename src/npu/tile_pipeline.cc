#include "npu/tile_pipeline.hh"

#include "common/logging.hh"

namespace neummu {

TilePipeline::TilePipeline(EventQueue &eq, DmaEngine &dma,
                           unsigned buffer_depth)
    : _eq(eq), _dma(dma), _bufferDepth(buffer_depth)
{
    NEUMMU_ASSERT(buffer_depth >= 1, "need at least one tile buffer");
}

PipelineResult
TilePipeline::run(const std::vector<TileWork> &tiles)
{
    PipelineResult result;
    result.tiles = tiles.size();
    if (tiles.empty())
        return result;

    bool finished = false;
    start(tiles, [&](const PipelineResult &r) {
        result = r;
        finished = true;
    });
    _eq.run();
    NEUMMU_ASSERT(finished,
                  "pipeline drained before finishing all tiles");
    return result;
}

void
TilePipeline::start(const std::vector<TileWork> &tiles,
                    DoneCallback done)
{
    NEUMMU_ASSERT(!_tiles, "pipeline already running a tile sequence");
    if (tiles.empty()) {
        // Degenerate empty sequence: complete without traffic.
        PipelineResult result;
        result.finishTick = _eq.now();
        _eq.scheduleIn(0, [done = std::move(done), result] {
            done(result);
        });
        return;
    }

    _tiles = &tiles;
    _onDone = std::move(done);
    _startTick = _eq.now();
    _nextFetch = 0;
    _computesDone = 0;
    _fetchReady.assign(tiles.size(), false);
    _computeFinished.assign(tiles.size(), false);
    _lastComputeDone = _eq.now();
    _memBusy = 0;
    _computeBusy = 0;

    startNextFetchIfReady();
}

void
TilePipeline::startNextFetchIfReady()
{
    if (!_tiles || _nextFetch >= _tiles->size() || _dma.busy())
        return;
    // The target SPM buffer is free only once the tile that last used
    // it has finished computing.
    if (_nextFetch >= _bufferDepth &&
        !_computeFinished[_nextFetch - _bufferDepth]) {
        return;
    }

    const std::size_t idx = _nextFetch++;
    const TileWork &tile = (*_tiles)[idx];
    std::vector<VaRun> runs;
    runs.reserve(tile.iaRuns.size() + tile.wRuns.size());
    // Fig. 3 order: IA first, then W, never interleaved.
    runs.insert(runs.end(), tile.iaRuns.begin(), tile.iaRuns.end());
    runs.insert(runs.end(), tile.wRuns.begin(), tile.wRuns.end());

    _fetchStart = _eq.now();
    _dma.fetch(std::move(runs),
               [this, idx](Tick at) { onFetchDone(idx, at); });
}

void
TilePipeline::onFetchDone(std::size_t idx, Tick at)
{
    _fetchReady[idx] = true;
    _memBusy += at - _fetchStart;
    tryStartCompute(idx);
    startNextFetchIfReady();
}

void
TilePipeline::tryStartCompute(std::size_t idx)
{
    // Compute(idx) needs its data resident and the PEs free (the
    // previous tile's compute finished).
    if (!_fetchReady[idx])
        return;
    if (idx > 0 && !_computeFinished[idx - 1])
        return;
    const Tick cycles = (*_tiles)[idx].computeCycles;
    _computeBusy += cycles;
    _eq.scheduleIn(cycles, [this, idx] { onComputeDone(idx); });
}

void
TilePipeline::onComputeDone(std::size_t idx)
{
    _computeFinished[idx] = true;
    _computesDone++;
    _lastComputeDone = _eq.now();
    if (idx + 1 < _tiles->size())
        tryStartCompute(idx + 1);
    startNextFetchIfReady();

    if (_computesDone == _tiles->size()) {
        PipelineResult result;
        result.tiles = _tiles->size();
        result.finishTick = _lastComputeDone;
        result.totalCycles = _lastComputeDone - _startTick;
        result.memPhaseCycles = _memBusy;
        result.computePhaseCycles = _computeBusy;
        _tiles = nullptr;
        auto done = std::move(_onDone);
        _onDone = nullptr;
        if (done)
            done(result);
    }
}

} // namespace neummu
