/**
 * @file
 * Double-buffered tile pipeline (Fig. 3): tile(n)'s compute phase
 * overlaps tile(n+1)'s memory phase. The DMA serializes fetches; a
 * fetch may only start once the SPM buffer it targets has been freed
 * by an earlier tile's compute phase.
 */

#ifndef NEUMMU_NPU_TILE_PIPELINE_HH
#define NEUMMU_NPU_TILE_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "npu/dma_engine.hh"
#include "npu/tile.hh"
#include "sim/event_queue.hh"

namespace neummu {

/** Outcome of running one tile sequence (typically one layer). */
struct PipelineResult
{
    /** Tick at which the last tile's compute phase finished. */
    Tick finishTick = 0;
    /** Wall-clock duration of the sequence. */
    Tick totalCycles = 0;
    /** Aggregate DMA fetch occupancy. */
    Tick memPhaseCycles = 0;
    /** Aggregate compute occupancy. */
    Tick computePhaseCycles = 0;
    std::uint64_t tiles = 0;
};

/** Executes tile sequences over a DmaEngine on a shared EventQueue. */
class TilePipeline
{
  public:
    /** Completion of one started tile sequence. */
    using DoneCallback = std::function<void(const PipelineResult &)>;

    /**
     * @param buffer_depth Number of tile buffers: 2 models the
     *        paper's double buffering; 1 serializes memory and
     *        compute phases (ablation).
     */
    TilePipeline(EventQueue &eq, DmaEngine &dma,
                 unsigned buffer_depth = 2);

    /**
     * Run @p tiles to completion (drains the event queue). May be
     * called repeatedly; simulated time accumulates across calls so
     * TLB/TPreg state carries over between layers, as in hardware.
     */
    PipelineResult run(const std::vector<TileWork> &tiles);

    /**
     * Event-driven variant for concurrent (multi-tenant) runs: kick
     * off @p tiles and return immediately; @p done fires at the tick
     * the last tile's compute phase finishes. The caller drains the
     * event queue (and keeps @p tiles alive until @p done fires).
     * @pre No sequence in flight on this pipeline.
     */
    void start(const std::vector<TileWork> &tiles, DoneCallback done);

    /** A started sequence has not completed yet. */
    bool busy() const { return _tiles != nullptr; }

  private:
    void startNextFetchIfReady();
    void onFetchDone(std::size_t idx, Tick at);
    void tryStartCompute(std::size_t idx);
    void onComputeDone(std::size_t idx);

    EventQueue &_eq;
    DmaEngine &_dma;
    unsigned _bufferDepth;

    const std::vector<TileWork> *_tiles = nullptr;
    DoneCallback _onDone;
    Tick _startTick = 0;
    std::size_t _nextFetch = 0;
    std::size_t _computesDone = 0;
    std::vector<bool> _fetchReady;
    std::vector<bool> _computeFinished;
    Tick _lastComputeDone = 0;
    Tick _memBusy = 0;
    Tick _computeBusy = 0;
    Tick _fetchStart = 0;
};

} // namespace neummu

#endif // NEUMMU_NPU_TILE_PIPELINE_HH
