/**
 * @file
 * Open-addressing hash map from a 64-bit key to a small value,
 * built for the simulator's hot-path bookkeeping: the PTS
 * scoreboard, the in-flight-VPN multiplicity table, and the DMA
 * burst-length tracker all churn one entry per request, and the
 * node-per-entry std::unordered_map they used to live in made that
 * churn a malloc/free pair per translation.
 *
 * Linear probing over a power-of-two slot array with multiplicative
 * hashing, backward-shift deletion (no tombstones, so load never
 * degrades), and a reserved sentinel key marking empty slots. The
 * slot array is the slab: erase/insert reuses slots with zero
 * allocation in steady state (the array only reallocates on growth,
 * which doubles), and highWater() exposes the peak live-entry count
 * so tests can pin pool lifecycle behavior.
 */

#ifndef NEUMMU_COMMON_FLAT_MAP_HH
#define NEUMMU_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace neummu {

/**
 * Hash map keyed by std::uint64_t. The key ~0 is reserved as the
 * empty-slot sentinel and must never be inserted; the simulator's
 * keys (VPNs, request ids) can never take that value.
 */
template <typename V>
class FlatMap64
{
  public:
    static constexpr std::uint64_t emptyKey = ~std::uint64_t(0);

    explicit FlatMap64(std::size_t min_capacity = 64)
    {
        std::size_t cap = 16;
        while (cap < min_capacity)
            cap <<= 1;
        _slots.assign(cap, Slot{});
        _mask = cap - 1;
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _slots.size(); }
    /** Peak live-entry count over the map's lifetime. */
    std::size_t highWater() const { return _highWater; }
    /**
     * Times the slot array grew (and rehashed every live entry).
     * A map sized from a correct capacity hint reports zero: its
     * steady state never touches the allocator.
     */
    std::size_t rehashCount() const { return _rehashes; }

    /** Pointer to the value stored under @p key; nullptr if absent. */
    V *
    find(std::uint64_t key)
    {
        std::size_t idx = idealSlot(key);
        while (_slots[idx].key != emptyKey) {
            if (_slots[idx].key == key)
                return &_slots[idx].value;
            idx = (idx + 1) & _mask;
        }
        return nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<FlatMap64 *>(this)->find(key);
    }

    bool contains(std::uint64_t key) const { return find(key); }

    /**
     * Insert @p value under @p key if absent. Returns the stored
     * value (existing one if present) and whether insertion happened.
     * The reference stays valid until the next insert (growth).
     */
    std::pair<V &, bool>
    insert(std::uint64_t key, V value)
    {
        NEUMMU_ASSERT(key != emptyKey,
                      "the all-ones key is the empty-slot sentinel");
        if ((_size + 1) * 4 > capacity() * 3)
            grow();
        std::size_t idx = idealSlot(key);
        while (_slots[idx].key != emptyKey) {
            if (_slots[idx].key == key)
                return {_slots[idx].value, false};
            idx = (idx + 1) & _mask;
        }
        _slots[idx].key = key;
        _slots[idx].value = std::move(value);
        _size++;
        if (_size > _highWater)
            _highWater = _size;
        return {_slots[idx].value, true};
    }

    /** Remove @p key; false when absent. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t idx = idealSlot(key);
        while (_slots[idx].key != key) {
            if (_slots[idx].key == emptyKey)
                return false;
            idx = (idx + 1) & _mask;
        }
        // Backward-shift deletion: pull every displaced follower of
        // the probe chain one step back so lookups never need
        // tombstones.
        std::size_t hole = idx;
        std::size_t next = (hole + 1) & _mask;
        while (_slots[next].key != emptyKey) {
            const std::size_t ideal = idealSlot(_slots[next].key);
            if (((next - ideal) & _mask) >= ((next - hole) & _mask)) {
                _slots[hole] = std::move(_slots[next]);
                hole = next;
            }
            next = (next + 1) & _mask;
        }
        _slots[hole] = Slot{};
        _size--;
        return true;
    }

    void
    clear()
    {
        for (Slot &s : _slots)
            s = Slot{};
        _size = 0;
    }

  private:
    struct Slot
    {
        std::uint64_t key = emptyKey;
        V value{};
    };

    std::size_t
    idealSlot(std::uint64_t key) const
    {
        // Multiplicative (Fibonacci) hashing: the simulator's keys
        // are sequential ids and densely clustered VPNs, so spread
        // them before masking.
        return std::size_t((key * 0x9E3779B97F4A7C15ull) >> 32) &
               _mask;
    }

    void
    grow()
    {
        _rehashes++;
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(old.size() * 2, Slot{});
        _mask = _slots.size() - 1;
        for (Slot &s : old) {
            if (s.key == emptyKey)
                continue;
            std::size_t idx = idealSlot(s.key);
            while (_slots[idx].key != emptyKey)
                idx = (idx + 1) & _mask;
            _slots[idx] = std::move(s);
        }
    }

    std::vector<Slot> _slots;
    std::size_t _mask = 0;
    std::size_t _size = 0;
    std::size_t _highWater = 0;
    std::size_t _rehashes = 0;
};

} // namespace neummu

#endif // NEUMMU_COMMON_FLAT_MAP_HH
