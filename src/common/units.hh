/**
 * @file
 * Size and page-geometry helpers.
 */

#ifndef NEUMMU_COMMON_UNITS_HH
#define NEUMMU_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace neummu {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/** log2 of the baseline small (4 KB) page size. */
inline constexpr unsigned smallPageShift = 12;
/** log2 of the large (2 MB) page size. */
inline constexpr unsigned largePageShift = 21;

/** Bits of virtual address actually translated on x86-64. */
inline constexpr unsigned vaBits = 48;
/** Radix-tree fanout: 9 VA bits per level, 4 levels (L4..L1). */
inline constexpr unsigned bitsPerLevel = 9;
inline constexpr unsigned pageTableLevels = 4;

/** Returns the page size in bytes for a page shift. */
constexpr std::uint64_t
pageSize(unsigned page_shift)
{
    return std::uint64_t(1) << page_shift;
}

/** Returns the page-offset mask for a page shift. */
constexpr std::uint64_t
pageOffsetMask(unsigned page_shift)
{
    return pageSize(page_shift) - 1;
}

/** Virtual/physical page number of @p addr under @p page_shift. */
constexpr Addr
pageNumber(Addr addr, unsigned page_shift)
{
    return addr >> page_shift;
}

/** Base address of the page containing @p addr. */
constexpr Addr
pageBase(Addr addr, unsigned page_shift)
{
    return addr & ~pageOffsetMask(page_shift);
}

/**
 * Radix-tree index of @p va at @p level, where level 4 is the root
 * (PML4) and level 1 selects the final PTE under 4 KB pages.
 */
constexpr unsigned
radixIndex(Addr va, unsigned level)
{
    const unsigned shift = smallPageShift + bitsPerLevel * (level - 1);
    return (va >> shift) & ((1u << bitsPerLevel) - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace neummu

#endif // NEUMMU_COMMON_UNITS_HH
