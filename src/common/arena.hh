/**
 * @file
 * Per-request arena allocators. The simulator's request-scoped
 * collections -- a walker's PRMB fan-out list, a drain train's
 * response batch, a serving slot's wait queue -- are born, filled,
 * and emptied millions of times per run; giving each its own
 * heap-allocated container turns that churn into malloc/free pairs
 * on the hot path. These pools trade a handful of retained buffers
 * for zero steady-state allocation:
 *
 * - SlabArena<T>: a pool of fixed-capacity vectors ("slabs") with
 *   O(1) acquire/release by handle. Handles decouple a slab's
 *   lifetime from its producer: a page-table walker fills a slab
 *   with merged responses, then hands the handle to the drain train
 *   that empties it cycles later, after the walker itself has been
 *   recycled.
 *
 * - ArenaQueue<T>: a FIFO over one contiguous buffer with head
 *   compaction, replacing std::deque for request wait queues. The
 *   buffer is retained across empty/refill cycles, and the consumed
 *   prefix is compacted away only when it dominates the buffer, so
 *   pushes and pops are plain vector operations.
 */

#ifndef NEUMMU_COMMON_ARENA_HH
#define NEUMMU_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace neummu {

/**
 * Pool of recycled fixed-capacity vectors. Every slab is reserved to
 * slabCapacity() on first acquisition and keeps that storage through
 * release/reacquire cycles; the pool grows (allocating a new slab)
 * only when more slabs are live at once than ever before.
 */
template <typename T>
class SlabArena
{
  public:
    using Handle = std::uint32_t;
    static constexpr Handle npos = ~Handle(0);

    /**
     * @param slab_capacity Reserved element capacity per slab; size
     *        it so producers never outgrow it (an overflowing slab
     *        still works, it just reallocates).
     */
    explicit SlabArena(std::size_t slab_capacity)
        : _slabCapacity(slab_capacity)
    {
    }

    std::size_t slabCapacity() const { return _slabCapacity; }

    /** Take an empty slab with its capacity pre-reserved. */
    Handle
    acquire()
    {
        Handle h;
        if (!_free.empty()) {
            h = _free.back();
            _free.pop_back();
        } else {
            h = Handle(_slabs.size());
            _slabs.emplace_back();
            _slabs.back().reserve(_slabCapacity);
        }
        _live++;
        if (_live > _highWater)
            _highWater = _live;
        return h;
    }

    std::vector<T> &at(Handle h) { return _slabs[h]; }
    const std::vector<T> &at(Handle h) const { return _slabs[h]; }

    /** Return a slab to the pool (contents cleared, storage kept). */
    void
    release(Handle h)
    {
        NEUMMU_ASSERT(h < _slabs.size(), "bad slab handle");
        _slabs[h].clear();
        _free.push_back(h);
        NEUMMU_ASSERT(_live > 0, "slab release underflow");
        _live--;
    }

    /** Slabs currently acquired (tests/diagnostics). */
    std::size_t liveSlabs() const { return _live; }
    /** Peak concurrently-acquired slabs == slabs ever allocated. */
    std::size_t highWater() const { return _highWater; }

  private:
    std::size_t _slabCapacity;
    std::vector<std::vector<T>> _slabs;
    std::vector<Handle> _free;
    std::size_t _live = 0;
    std::size_t _highWater = 0;
};

/**
 * FIFO queue over one contiguous retained buffer. Pops advance a
 * head index instead of shifting elements; the consumed prefix is
 * reclaimed when the queue empties (free -- the buffer just resets)
 * or compacted away once it exceeds both a fixed floor and the live
 * element count, keeping memory bounded under permanent backlog.
 */
template <typename T>
class ArenaQueue
{
  public:
    bool empty() const { return _head == _buf.size(); }
    std::size_t size() const { return _buf.size() - _head; }

    void
    push_back(T v)
    {
        _buf.push_back(std::move(v));
    }

    T &front() { return _buf[_head]; }
    const T &front() const { return _buf[_head]; }

    void
    pop_front()
    {
        NEUMMU_ASSERT(!empty(), "pop from empty queue");
        _head++;
        if (_head == _buf.size()) {
            _buf.clear();
            _head = 0;
        } else if (_head > compactFloor && _head > _buf.size() / 2) {
            _buf.erase(_buf.begin(),
                       _buf.begin() + std::ptrdiff_t(_head));
            _head = 0;
        }
    }

    void
    clear()
    {
        _buf.clear();
        _head = 0;
    }

  private:
    /** Don't bother compacting tiny consumed prefixes. */
    static constexpr std::size_t compactFloor = 64;

    std::vector<T> _buf;
    std::size_t _head = 0;
};

} // namespace neummu

#endif // NEUMMU_COMMON_ARENA_HH
