#include "common/arg_parser.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace neummu {

ArgParser::ArgParser(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        std::string arg(argv[i]);
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            _values[arg] = "true";
        } else {
            _values[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }
}

bool
ArgParser::has(const std::string &key) const
{
    return _values.count(key) > 0;
}

std::string
ArgParser::get(const std::string &key, const std::string &default_value) const
{
    const auto it = _values.find(key);
    return it == _values.end() ? default_value : it->second;
}

std::int64_t
ArgParser::getInt(const std::string &key, std::int64_t default_value) const
{
    const auto it = _values.find(key);
    if (it == _values.end())
        return default_value;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
ArgParser::getDouble(const std::string &key, double default_value) const
{
    const auto it = _values.find(key);
    if (it == _values.end())
        return default_value;
    return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string>
ArgParser::getList(const std::string &key,
                   const std::string &default_value, char sep) const
{
    const std::string joined = get(key, default_value);
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= joined.size()) {
        std::size_t at = joined.find(sep, pos);
        if (at == std::string::npos)
            at = joined.size();
        if (at > pos)
            out.push_back(joined.substr(pos, at - pos));
        pos = at + 1;
    }
    return out;
}

bool
ArgParser::getBool(const std::string &key, bool default_value) const
{
    const auto it = _values.find(key);
    if (it == _values.end())
        return default_value;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

} // namespace neummu
