/**
 * @file
 * Fundamental scalar types shared across the NeuMMU simulator.
 */

#ifndef NEUMMU_COMMON_TYPES_HH
#define NEUMMU_COMMON_TYPES_HH

#include <cstdint>

namespace neummu {

/** Byte address (virtual or physical, context-dependent). */
using Addr = std::uint64_t;

/**
 * Simulation time in cycles. The baseline NPU runs its PEs at 1 GHz
 * (Table I), so one tick equals one nanosecond.
 */
using Tick = std::uint64_t;

/** Sentinel for "no tick scheduled". */
inline constexpr Tick maxTick = ~Tick(0);

/** Sentinel for invalid addresses. */
inline constexpr Addr invalidAddr = ~Addr(0);

} // namespace neummu

#endif // NEUMMU_COMMON_TYPES_HH
