#include "common/random.hh"

namespace neummu {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t stream)
{
    // Two rounds of splitmix64 over (root, stream): mixing the stream
    // id through the same finalizer decorrelates children even for
    // adjacent roots/streams.
    std::uint64_t x = root ^ (0x9e3779b97f4a7c15ull + stream);
    Rng::splitMix(x);
    x ^= stream * 0xbf58476d1ce4e5b9ull;
    return Rng::splitMix(x);
}

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t domain,
           std::uint64_t stream)
{
    // Chain through a domain-salted intermediate root so the
    // (domain, stream) space is disjoint from the flat stream space.
    return deriveSeed(deriveSeed(root, 0xd0a11d0a11d0a11dull ^ domain),
                      stream);
}

std::uint64_t
hashString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
Rng::splitMix(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitMix(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    // Debiased modulo via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace neummu
