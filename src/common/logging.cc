#include "common/logging.hh"

namespace neummu {

namespace {
LogLevel globalLevel = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
exitWithMessage(const char *prefix, const std::string &msg,
                const char *file, int line, bool do_abort)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(), file,
                 line);
    if (do_abort)
        std::abort();
    std::exit(1);
}

void
message(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail

void
warn(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        detail::message("warn", msg);
}

void
inform(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        detail::message("info", msg);
}

} // namespace neummu
