/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * distributions grouped per component, in the spirit of gem5's stats.
 */

#ifndef NEUMMU_COMMON_STATS_HH
#define NEUMMU_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace neummu {
namespace stats {

/** A monotonically accumulating scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    void reset() { _value = 0.0; }

    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/**
 * Running mean/min/max over sampled values. Used for per-tile and
 * per-request latency statistics.
 */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram distribution. */
class Distribution
{
  public:
    /** Create a histogram over [low, high) with @p buckets buckets. */
    Distribution(double low = 0.0, double high = 1.0,
                 std::size_t buckets = 16);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }

  private:
    double _low;
    double _high;
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
};

/**
 * A named group of statistics belonging to one simulated component.
 * Components register their counters once; dump() pretty-prints all of
 * them with the component prefix, gem5 stats.txt style.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    Scalar &scalar(const std::string &stat_name);
    Average &average(const std::string &stat_name);

    const std::string &name() const { return _name; }

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic. */
    void reset();

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Average> _averages;
};

} // namespace stats
} // namespace neummu

#endif // NEUMMU_COMMON_STATS_HH
