/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * distributions grouped per component, in the spirit of gem5's stats.
 */

#ifndef NEUMMU_COMMON_STATS_HH
#define NEUMMU_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace neummu {
namespace stats {

/** Arithmetic mean; 0 for an empty sample. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (const double x : xs)
        s += x;
    return s / double(xs.size());
}

/**
 * Geometric mean (for normalized-performance aggregates). Zero and
 * negative inputs have no geometric mean; they are skipped rather
 * than silently producing -inf/NaN, and 0 is returned when no
 * positive sample remains.
 */
inline double
geomean(const std::vector<double> &xs)
{
    double s = 0.0;
    std::uint64_t n = 0;
    for (const double x : xs) {
        if (x <= 0.0)
            continue;
        s += std::log(x);
        n++;
    }
    return n ? std::exp(s / double(n)) : 0.0;
}

/** A monotonically accumulating scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    /** Overwrite the value (for gauges and recorded results). */
    void set(double v) { _value = v; }
    void reset() { _value = 0.0; }

    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/**
 * Running mean/min/max over sampled values. Used for per-tile and
 * per-request latency statistics.
 */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram distribution. */
class Distribution
{
  public:
    /** Create a histogram over [low, high) with @p buckets buckets. */
    Distribution(double low = 0.0, double high = 1.0,
                 std::size_t buckets = 16);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }

  private:
    double _low;
    double _high;
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
};

/**
 * A named group of statistics belonging to one simulated component.
 * Components register their counters once; dump() pretty-prints all of
 * them with the component prefix, gem5 stats.txt style.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    Scalar &scalar(const std::string &stat_name);
    Average &average(const std::string &stat_name);

    const std::string &name() const { return _name; }

    /** Registered statistics, for generic serialization. */
    const std::map<std::string, Scalar> &scalars() const
    {
        return _scalars;
    }
    const std::map<std::string, Average> &averages() const
    {
        return _averages;
    }

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic. */
    void reset();

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Average> _averages;
};

} // namespace stats
} // namespace neummu

#endif // NEUMMU_COMMON_STATS_HH
