/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * distributions grouped per component, in the spirit of gem5's stats.
 */

#ifndef NEUMMU_COMMON_STATS_HH
#define NEUMMU_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace neummu {
namespace stats {

/** Arithmetic mean; 0 for an empty sample. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (const double x : xs)
        s += x;
    return s / double(xs.size());
}

/**
 * Geometric mean (for normalized-performance aggregates). Zero and
 * negative inputs have no geometric mean; they are skipped rather
 * than silently producing -inf/NaN, and 0 is returned when no
 * positive sample remains.
 */
inline double
geomean(const std::vector<double> &xs)
{
    double s = 0.0;
    std::uint64_t n = 0;
    for (const double x : xs) {
        if (x <= 0.0)
            continue;
        s += std::log(x);
        n++;
    }
    return n ? std::exp(s / double(n)) : 0.0;
}

/** A monotonically accumulating scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    /** Overwrite the value (for gauges and recorded results). */
    void set(double v) { _value = v; }
    void reset() { _value = 0.0; }

    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/**
 * Running mean/min/max over sampled values. Used for per-tile and
 * per-request latency statistics.
 */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Streaming HDR-style log-bucketed histogram over unsigned integer
 * samples (latencies in cycles). Values below 2^precisionBits land in
 * exact unit buckets; above that, each power-of-two octave is split
 * into 2^precisionBits linear sub-buckets, so any reported quantile
 * is an upper bound within a relative error of 2^-precisionBits
 * (3.125% at the default 5 bits) while memory stays a few KB no
 * matter how many samples stream through. All bookkeeping is integer,
 * so quantiles are bit-deterministic: same sample multiset, same
 * p50/p99/p999, byte for byte.
 */
class Histogram
{
  public:
    explicit Histogram(unsigned precision_bits = 5);

    /** Record @p n samples of value @p v. */
    void record(std::uint64_t v, std::uint64_t n = 1);
    void reset();

    /**
     * Bucket-wise sum of @p other into this histogram (dump-time
     * aggregation of per-domain histograms). Both sides must use the
     * same precision; quantiles of the merge equal the quantiles of
     * recording both sample streams into one histogram.
     */
    void merge(const Histogram &other);

    std::uint64_t count() const { return _count; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _count ? _max : 0; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }

    /**
     * Smallest recorded-bucket upper bound covering at least
     * ceil(q * count) samples, clamped into [min, max]; 0 when empty.
     * Exact for values below 2^precisionBits, otherwise an upper
     * bound within relativeErrorBound().
     */
    std::uint64_t quantile(double q) const;

    /** Worst-case relative overestimate of quantile(). */
    double relativeErrorBound() const
    {
        return 1.0 / double(std::uint64_t(1) << _bits);
    }

  private:
    std::size_t bucketIndex(std::uint64_t v) const;
    std::uint64_t bucketUpperBound(std::size_t idx) const;

    unsigned _bits;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    std::uint64_t _min = ~std::uint64_t(0);
    std::uint64_t _max = 0;
    double _sum = 0.0;
};

/**
 * Bounded time series for windowed metrics (per-window throughput,
 * sampled queue depth). Values append in window order; when the
 * capacity fills, adjacent pairs merge (sum for additive counters,
 * mean for gauges) and the stride -- raw windows per stored point --
 * doubles, so an arbitrarily long run dumps a fixed-size,
 * deterministic series at self-coarsening resolution.
 */
class Series
{
  public:
    /** How two windows combine when the series coarsens. */
    enum class Merge
    {
        Sum,
        Mean,
    };

    explicit Series(std::size_t capacity = 256,
                    Merge merge = Merge::Sum);

    void append(double v);
    void reset();

    /** Raw windows appended so far. */
    std::uint64_t points() const { return _points; }
    /** Raw windows folded into each stored value. */
    std::uint64_t stride() const { return _stride; }
    const std::vector<double> &values() const { return _values; }

  private:
    void push(double v);

    std::size_t _capacity;
    Merge _merge;
    std::vector<double> _values;
    std::uint64_t _points = 0;
    std::uint64_t _stride = 1;
    /** Raw windows accumulated toward the next stored value. */
    double _carrySum = 0.0;
    std::uint64_t _carryCount = 0;
};

/** Fixed-bucket histogram distribution. */
class Distribution
{
  public:
    /** Create a histogram over [low, high) with @p buckets buckets. */
    Distribution(double low = 0.0, double high = 1.0,
                 std::size_t buckets = 16);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }

  private:
    double _low;
    double _high;
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
};

/**
 * A named group of statistics belonging to one simulated component.
 * Components register their counters once; dump() pretty-prints all of
 * them with the component prefix, gem5 stats.txt style.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    Scalar &scalar(const std::string &stat_name);
    Average &average(const std::string &stat_name);
    Histogram &histogram(const std::string &stat_name);
    /** @p merge only applies on first creation of the stat. */
    Series &series(const std::string &stat_name,
                   Series::Merge merge = Series::Merge::Sum);

    const std::string &name() const { return _name; }

    /** Registered statistics, for generic serialization. */
    const std::map<std::string, Scalar> &scalars() const
    {
        return _scalars;
    }
    const std::map<std::string, Average> &averages() const
    {
        return _averages;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return _histograms;
    }
    const std::map<std::string, Series> &allSeries() const
    {
        return _series;
    }

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic. */
    void reset();

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Average> _averages;
    std::map<std::string, Histogram> _histograms;
    std::map<std::string, Series> _series;
};

} // namespace stats
} // namespace neummu

#endif // NEUMMU_COMMON_STATS_HH
