/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). Every
 * stochastic element of the simulator draws from an explicitly seeded
 * Rng so experiments are bit-reproducible run to run.
 */

#ifndef NEUMMU_COMMON_RANDOM_HH
#define NEUMMU_COMMON_RANDOM_HH

#include <cstdint>
#include <string>

namespace neummu {

/**
 * Derive an independent child seed from @p root for stream
 * @p stream. Children of the same root with distinct stream ids are
 * statistically independent (splitmix64 over the pair), so every
 * workload of a multi-tenant run can own its own Rng stream derived
 * from the single SystemConfig seed -- reproducible regardless of
 * scheduling or completion order.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t stream);

/**
 * Domain-qualified seed derivation: an independent child seed for
 * stream @p stream of simulation domain @p domain. Equivalent to two
 * chained deriveSeed calls with the domain id mixed into its own
 * splitmix finalizer, so (domain, stream) pairs never collide with
 * plain deriveSeed streams. The sharded kernel's per-domain Rng
 * streams use this, and because it is a pure function of (root,
 * domain, stream) the draws are identical for any shard/thread
 * mapping.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t domain,
                         std::uint64_t stream);

/** FNV-1a 64-bit string hash, for name-keyed Rng streams. */
std::uint64_t hashString(const std::string &s);

/** Small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** splitmix64 step: advances @p x and returns the mixed value. */
    static std::uint64_t splitMix(std::uint64_t &x);

  private:
    std::uint64_t s[4];
};

} // namespace neummu

#endif // NEUMMU_COMMON_RANDOM_HH
