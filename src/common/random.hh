/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). Every
 * stochastic element of the simulator draws from an explicitly seeded
 * Rng so experiments are bit-reproducible run to run.
 */

#ifndef NEUMMU_COMMON_RANDOM_HH
#define NEUMMU_COMMON_RANDOM_HH

#include <cstdint>

namespace neummu {

/** Small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

  private:
    std::uint64_t s[4];

    static std::uint64_t splitMix(std::uint64_t &x);
};

} // namespace neummu

#endif // NEUMMU_COMMON_RANDOM_HH
