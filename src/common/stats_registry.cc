#include "common/stats_registry.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace neummu {
namespace stats {

void
StatsRegistry::add(Group &group)
{
    _groups.push_back(&group);
}

Group &
StatsRegistry::group(const std::string &name)
{
    for (const auto &owned : _owned) {
        if (owned->name() == name)
            return *owned;
    }
    _owned.push_back(std::make_unique<Group>(name));
    _groups.push_back(_owned.back().get());
    return *_owned.back();
}

Group &
StatsRegistry::dynamicGroup(const std::string &name)
{
    auto it = _dynamic.find(name);
    if (it == _dynamic.end())
        it = _dynamic.emplace(name, std::make_unique<Group>(name)).first;
    return *it->second;
}

void
StatsRegistry::removeDynamicGroup(const std::string &name)
{
    _dynamic.erase(name);
}

const Group *
StatsRegistry::find(const std::string &name) const
{
    for (const Group *g : _groups) {
        if (g->name() == name)
            return g;
    }
    const auto it = _dynamic.find(name);
    return it != _dynamic.end() ? it->second.get() : nullptr;
}

void
StatsRegistry::dumpText(std::ostream &os) const
{
    for (const Group *g : _groups)
        g->dump(os);
    for (const auto &[name, g] : _dynamic)
        g->dump(os);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** JSON number: integers without a fraction, non-finite as null. */
void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
    } else if (v == std::int64_t(v)) {
        os << std::int64_t(v);
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os << buf;
    }
}

/** One group as a JSON object body (between the outer braces). */
void
writeGroupJson(std::ostream &os, const Group &g)
{
    os << "\n  \"" << jsonEscape(g.name()) << "\": {";
    bool first_stat = true;
    for (const auto &[stat_name, s] : g.scalars()) {
        if (!first_stat)
            os << ",";
        first_stat = false;
        os << "\n    \"" << jsonEscape(stat_name) << "\": ";
        writeNumber(os, s.value());
    }
    for (const auto &[stat_name, a] : g.averages()) {
        if (!first_stat)
            os << ",";
        first_stat = false;
        os << "\n    \"" << jsonEscape(stat_name)
           << "\": {\"mean\": ";
        writeNumber(os, a.mean());
        os << ", \"count\": " << a.count() << ", \"min\": ";
        writeNumber(os, a.min());
        os << ", \"max\": ";
        writeNumber(os, a.max());
        os << "}";
    }
    for (const auto &[stat_name, h] : g.histograms()) {
        if (!first_stat)
            os << ",";
        first_stat = false;
        os << "\n    \"" << jsonEscape(stat_name)
           << "\": {\"count\": " << h.count() << ", \"mean\": ";
        writeNumber(os, h.mean());
        os << ", \"min\": " << h.min()
           << ", \"max\": " << h.max()
           << ", \"p50\": " << h.quantile(0.5)
           << ", \"p90\": " << h.quantile(0.9)
           << ", \"p99\": " << h.quantile(0.99)
           << ", \"p999\": " << h.quantile(0.999) << "}";
    }
    for (const auto &[stat_name, ts] : g.allSeries()) {
        if (!first_stat)
            os << ",";
        first_stat = false;
        os << "\n    \"" << jsonEscape(stat_name)
           << "\": {\"points\": " << ts.points()
           << ", \"stride\": " << ts.stride() << ", \"values\": [";
        bool first_value = true;
        for (const double v : ts.values()) {
            if (!first_value)
                os << ", ";
            first_value = false;
            writeNumber(os, v);
        }
        os << "]}";
    }
    os << "\n  }";
}

} // namespace

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first_group = true;
    for (const Group *g : _groups) {
        if (!first_group)
            os << ",";
        first_group = false;
        writeGroupJson(os, *g);
    }
    for (const auto &[name, g] : _dynamic) {
        if (!first_group)
            os << ",";
        first_group = false;
        writeGroupJson(os, *g);
    }
    os << "\n}\n";
}

bool
StatsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open JSON output file " + path);
        return false;
    }
    dumpJson(out);
    return bool(out);
}

void
StatsRegistry::reset()
{
    for (Group *g : _groups)
        g->reset();
    for (auto &[name, g] : _dynamic)
        g->reset();
}

} // namespace stats
} // namespace neummu
