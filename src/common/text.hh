/**
 * @file
 * Small shared string helpers for the config-parsing surfaces (the
 * workload factory's spec grammar and the sweep ConfigBinder), so
 * case-folding rules cannot drift between them.
 */

#ifndef NEUMMU_COMMON_TEXT_HH
#define NEUMMU_COMMON_TEXT_HH

#include <algorithm>
#include <cctype>
#include <string>

namespace neummu {

/** ASCII-lowercased copy of @p s. */
inline std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return char(std::tolower(c)); });
    return out;
}

} // namespace neummu

#endif // NEUMMU_COMMON_TEXT_HH
