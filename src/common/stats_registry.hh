/**
 * @file
 * Central registry of per-component statistics groups. Every
 * component a System builds registers its stats::Group here, so one
 * call dumps the whole machine's counters -- as text (gem5 stats.txt
 * style) or as JSON (the single serialization path bench --json
 * output also flows through).
 */

#ifndef NEUMMU_COMMON_STATS_REGISTRY_HH
#define NEUMMU_COMMON_STATS_REGISTRY_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace neummu {
namespace stats {

/**
 * Holds references to component-owned groups (add()) and owns ad-hoc
 * groups created through group() -- e.g., per-grid-point bench
 * results. Dump order is registration order, so output is stable
 * across runs.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /**
     * Register a component-owned group. The group must outlive the
     * registry (components and registry are co-owned by System).
     */
    void add(Group &group);

    /**
     * Return the registry-owned group named @p name, creating and
     * registering it on first use. For recording results that have no
     * natural component owner (bench grid points, derived metrics).
     */
    Group &group(const std::string &name);

    /**
     * Return the registry-owned *dynamic* group named @p name,
     * creating it on first use. Dynamic groups form their own section
     * dumped after every statically registered group, ordered by name
     * rather than by creation time -- components that come and go
     * mid-run (serving tenants) register here so the dump stays
     * byte-identical no matter when each group first appeared.
     */
    Group &dynamicGroup(const std::string &name);

    /** Drop the dynamic group named @p name, if present. */
    void removeDynamicGroup(const std::string &name);

    /** All registered groups, in registration order. */
    const std::vector<Group *> &groups() const { return _groups; }

    /** All dynamic groups, in name order. */
    const std::map<std::string, std::unique_ptr<Group>> &
    dynamicGroups() const
    {
        return _dynamic;
    }

    /** Find a registered group by name; nullptr when absent. */
    const Group *find(const std::string &name) const;

    /** Write "group.stat value" lines for every registered group. */
    void dumpText(std::ostream &os) const;

    /**
     * Write every registered group as one JSON object:
     * { "group": { "scalar": v, "avg": {mean,count,min,max} } }.
     */
    void dumpJson(std::ostream &os) const;

    /** dumpJson() to @p path; false (with a warning) on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

    /** Reset every statistic in every registered group. */
    void reset();

  private:
    std::vector<Group *> _groups;
    std::vector<std::unique_ptr<Group>> _owned;
    std::map<std::string, std::unique_ptr<Group>> _dynamic;
};

/** Escape @p s for use inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace stats
} // namespace neummu

#endif // NEUMMU_COMMON_STATS_REGISTRY_HH
