/**
 * @file
 * Minimal --key=value argument parser used by bench and example
 * binaries to override experiment parameters.
 */

#ifndef NEUMMU_COMMON_ARG_PARSER_HH
#define NEUMMU_COMMON_ARG_PARSER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace neummu {

/** Parses "--key=value" style command-line options. */
class ArgParser
{
  public:
    ArgParser(int argc, char **argv);

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &default_value) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t default_value) const;
    double getDouble(const std::string &key, double default_value) const;
    bool getBool(const std::string &key, bool default_value) const;
    /**
     * The option's value split on @p sep, empty pieces dropped
     * (e.g. --workloads=a;b;c). @p default_value when absent.
     */
    std::vector<std::string> getList(const std::string &key,
                                     const std::string &default_value,
                                     char sep = ';') const;

  private:
    std::map<std::string, std::string> _values;
};

} // namespace neummu

#endif // NEUMMU_COMMON_ARG_PARSER_HH
