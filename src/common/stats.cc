#include "common/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace neummu {
namespace stats {

Distribution::Distribution(double low, double high, std::size_t buckets)
    : _low(low), _high(high),
      _bucketWidth((high - low) / double(buckets ? buckets : 1)),
      _buckets(buckets ? buckets : 1, 0)
{
}

void
Distribution::sample(double v)
{
    _count++;
    _sum += v;
    if (v < _low) {
        _underflow++;
    } else if (v >= _high) {
        _overflow++;
    } else {
        auto idx = std::size_t((v - _low) / _bucketWidth);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        _buckets[idx]++;
    }
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = 0.0;
}

Histogram::Histogram(unsigned precision_bits)
    : _bits(precision_bits)
{
    // Below 1 bit the octave sub-split degenerates; above 16 the
    // bucket table would dwarf the data it summarizes.
    if (_bits < 1)
        _bits = 1;
    if (_bits > 16)
        _bits = 16;
}

std::size_t
Histogram::bucketIndex(std::uint64_t v) const
{
    const std::uint64_t sub = std::uint64_t(1) << _bits;
    if (v < sub)
        return std::size_t(v);
    // Floor log2 via the highest set bit, then the top precisionBits
    // bits below it select the linear sub-bucket within the octave.
    unsigned msb = 63;
    while (!(v >> msb))
        msb--;
    const unsigned shift = msb - _bits;
    return std::size_t((std::uint64_t(shift + 1) << _bits) +
                       ((v >> shift) - sub));
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t idx) const
{
    const std::uint64_t sub = std::uint64_t(1) << _bits;
    const std::uint64_t g = std::uint64_t(idx) >> _bits;
    if (g == 0)
        return std::uint64_t(idx);
    const unsigned shift = unsigned(g - 1);
    const std::uint64_t low = (std::uint64_t(idx) & (sub - 1)) + sub;
    if (shift >= 63 - _bits)
        return ~std::uint64_t(0);
    return ((low + 1) << shift) - 1;
}

void
Histogram::record(std::uint64_t v, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = bucketIndex(v);
    if (idx >= _buckets.size())
        _buckets.resize(idx + 1, 0);
    _buckets[idx] += n;
    _count += n;
    _sum += double(v) * double(n);
    _min = std::min(_min, v);
    _max = std::max(_max, v);
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _count = 0;
    _sum = 0.0;
    _min = ~std::uint64_t(0);
    _max = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other._count == 0)
        return;
    // Bucket indices only line up when the precision matches; every
    // histogram in the simulator uses the default 5 bits, so a
    // mismatch is a programming error worth dying on.
    NEUMMU_ASSERT(_bits == other._bits,
                  "histogram precision mismatch in merge");
    if (_buckets.size() < other._buckets.size())
        _buckets.resize(other._buckets.size(), 0);
    for (std::size_t i = 0; i < other._buckets.size(); i++)
        _buckets[i] += other._buckets[i];
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (_count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank from integer arithmetic only at the boundary: ceil(q * n)
    // clamped into [1, n], so q = 0.5 of 4 samples is rank 2.
    std::uint64_t rank = std::uint64_t(std::ceil(q * double(_count)));
    rank = std::min(std::max<std::uint64_t>(rank, 1), _count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); i++) {
        seen += _buckets[i];
        if (seen >= rank) {
            const std::uint64_t bound = bucketUpperBound(i);
            return std::max(std::min(bound, _max), _min);
        }
    }
    return _max;
}

Series::Series(std::size_t capacity, Merge merge)
    : _capacity(capacity < 2 ? 2 : capacity & ~std::size_t(1)),
      _merge(merge)
{
    _values.reserve(_capacity);
}

void
Series::push(double v)
{
    _values.push_back(v);
    if (_values.size() < _capacity)
        return;
    // Fold adjacent pairs, double the stride: resolution halves, the
    // footprint stays bounded, and the result is a pure function of
    // the appended sequence.
    for (std::size_t i = 0; i < _values.size() / 2; i++) {
        const double merged = _values[2 * i] + _values[2 * i + 1];
        _values[i] =
            _merge == Merge::Sum ? merged : merged / 2.0;
    }
    _values.resize(_values.size() / 2);
    _stride *= 2;
}

void
Series::append(double v)
{
    _points++;
    if (_stride == 1) {
        push(v);
        return;
    }
    _carrySum += v;
    _carryCount++;
    if (_carryCount < _stride)
        return;
    push(_merge == Merge::Sum ? _carrySum
                              : _carrySum / double(_carryCount));
    _carrySum = 0.0;
    _carryCount = 0;
}

void
Series::reset()
{
    _values.clear();
    _points = 0;
    _stride = 1;
    _carrySum = 0.0;
    _carryCount = 0;
}

Scalar &
Group::scalar(const std::string &stat_name)
{
    return _scalars[stat_name];
}

Average &
Group::average(const std::string &stat_name)
{
    return _averages[stat_name];
}

Histogram &
Group::histogram(const std::string &stat_name)
{
    return _histograms[stat_name];
}

Series &
Group::series(const std::string &stat_name, Series::Merge merge)
{
    auto it = _series.find(stat_name);
    if (it == _series.end())
        it = _series.emplace(stat_name, Series(256, merge)).first;
    return it->second;
}

void
Group::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &[stat_name, s] : _scalars) {
        os << std::setw(44) << (_name + "." + stat_name) << " "
           << s.value() << "\n";
    }
    for (const auto &[stat_name, a] : _averages) {
        os << std::setw(44) << (_name + "." + stat_name + ".mean") << " "
           << a.mean() << "\n";
        os << std::setw(44) << (_name + "." + stat_name + ".count") << " "
           << a.count() << "\n";
    }
    for (const auto &[stat_name, h] : _histograms) {
        const std::string base = _name + "." + stat_name;
        os << std::setw(44) << (base + ".count") << " " << h.count()
           << "\n";
        os << std::setw(44) << (base + ".mean") << " " << h.mean()
           << "\n";
        os << std::setw(44) << (base + ".min") << " " << h.min()
           << "\n";
        os << std::setw(44) << (base + ".max") << " " << h.max()
           << "\n";
        os << std::setw(44) << (base + ".p50") << " "
           << h.quantile(0.5) << "\n";
        os << std::setw(44) << (base + ".p90") << " "
           << h.quantile(0.9) << "\n";
        os << std::setw(44) << (base + ".p99") << " "
           << h.quantile(0.99) << "\n";
        os << std::setw(44) << (base + ".p999") << " "
           << h.quantile(0.999) << "\n";
    }
    for (const auto &[stat_name, ts] : _series) {
        const std::string base = _name + "." + stat_name;
        os << std::setw(44) << (base + ".points") << " "
           << ts.points() << "\n";
        os << std::setw(44) << (base + ".stride") << " "
           << ts.stride() << "\n";
    }
}

void
Group::reset()
{
    for (auto &[stat_name, s] : _scalars)
        s.reset();
    for (auto &[stat_name, a] : _averages)
        a.reset();
    for (auto &[stat_name, h] : _histograms)
        h.reset();
    for (auto &[stat_name, ts] : _series)
        ts.reset();
}

} // namespace stats
} // namespace neummu
