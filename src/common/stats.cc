#include "common/stats.hh"

#include <iomanip>

namespace neummu {
namespace stats {

Distribution::Distribution(double low, double high, std::size_t buckets)
    : _low(low), _high(high),
      _bucketWidth((high - low) / double(buckets ? buckets : 1)),
      _buckets(buckets ? buckets : 1, 0)
{
}

void
Distribution::sample(double v)
{
    _count++;
    _sum += v;
    if (v < _low) {
        _underflow++;
    } else if (v >= _high) {
        _overflow++;
    } else {
        auto idx = std::size_t((v - _low) / _bucketWidth);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        _buckets[idx]++;
    }
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = 0.0;
}

Scalar &
Group::scalar(const std::string &stat_name)
{
    return _scalars[stat_name];
}

Average &
Group::average(const std::string &stat_name)
{
    return _averages[stat_name];
}

void
Group::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &[stat_name, s] : _scalars) {
        os << std::setw(44) << (_name + "." + stat_name) << " "
           << s.value() << "\n";
    }
    for (const auto &[stat_name, a] : _averages) {
        os << std::setw(44) << (_name + "." + stat_name + ".mean") << " "
           << a.mean() << "\n";
        os << std::setw(44) << (_name + "." + stat_name + ".count") << " "
           << a.count() << "\n";
    }
}

void
Group::reset()
{
    for (auto &[stat_name, s] : _scalars)
        s.reset();
    for (auto &[stat_name, a] : _averages)
        a.reset();
}

} // namespace stats
} // namespace neummu
