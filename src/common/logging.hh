/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef NEUMMU_COMMON_LOGGING_HH
#define NEUMMU_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace neummu {

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2 };

/** Global log verbosity (default Normal). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {
[[noreturn]] void exitWithMessage(const char *prefix, const std::string &msg,
                                  const char *file, int line, bool do_abort);
void message(const char *prefix, const std::string &msg);
} // namespace detail

/**
 * Report an internal simulator invariant violation and abort.
 * Use only for conditions that indicate a bug in the simulator itself.
 */
#define NEUMMU_PANIC(msg)                                                     \
    ::neummu::detail::exitWithMessage("panic", (msg), __FILE__, __LINE__,     \
                                      true)

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
#define NEUMMU_FATAL(msg)                                                     \
    ::neummu::detail::exitWithMessage("fatal", (msg), __FILE__, __LINE__,     \
                                      false)

/** Runtime-checked invariant (enabled in all build types). */
#define NEUMMU_ASSERT(cond, msg)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            NEUMMU_PANIC(std::string("assertion failed: ") + #cond + ": " +   \
                         (msg));                                              \
        }                                                                     \
    } while (0)

/** Non-fatal warning. */
void warn(const std::string &msg);

/** Informational status message, gated on the global log level. */
void inform(const std::string &msg);

} // namespace neummu

#endif // NEUMMU_COMMON_LOGGING_HH
