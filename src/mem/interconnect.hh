/**
 * @file
 * System-interconnect link models (CPU<->NPU PCIe and NPU<->NPU
 * high-bandwidth links) following Table I: 16 GB/s CPU<->NPU,
 * 160 GB/s NPU<->NPU, 150-cycle NUMA access latency.
 */

#ifndef NEUMMU_MEM_INTERCONNECT_HH
#define NEUMMU_MEM_INTERCONNECT_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace neummu {

/** Configuration of one unidirectional interconnect link. */
struct LinkConfig
{
    /** Serialization bandwidth in bytes per cycle. */
    double bytesPerCycle = 16.0;
    /** One-way latency in cycles (NUMA access latency, Table I). */
    Tick latency = 150;
};

/** Canned link configurations from Table I. */
LinkConfig pcieLinkConfig();
LinkConfig npuLinkConfig();

/**
 * A serializing link: transfers queue behind each other; a transfer of
 * B bytes arriving at t completes at max(t, free) + B/bw + latency.
 */
class Link
{
  public:
    Link(std::string name, LinkConfig cfg);

    /** Completion tick for a transfer of @p bytes entering at @p now. */
    Tick transfer(Tick now, std::uint64_t bytes);

    /**
     * Completion tick for a fine-grained (pipelined) access of
     * @p bytes: pays serialization like transfer() but models the
     * request/response round trip latency once per access.
     */
    Tick access(Tick now, std::uint64_t bytes);

    const LinkConfig &config() const { return _cfg; }
    Tick freeAt() const { return _free; }
    stats::Group &stats() { return _stats; }
    void reset();

  private:
    LinkConfig _cfg;
    Tick _free = 0;
    stats::Group _stats;
    /** Cached counters: transfers run per migrated page, so no
     *  per-call string-keyed stats lookups on the hot path. */
    stats::Scalar &_sBytesTransferred;
    stats::Scalar &_sTransfers;
    stats::Scalar &_sAccesses;
};

} // namespace neummu

#endif // NEUMMU_MEM_INTERCONNECT_HH
