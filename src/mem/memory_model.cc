#include "mem/memory_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace neummu {

MemoryModel::MemoryModel(std::string name, MemoryConfig cfg)
    : _cfg(cfg), _stats(std::move(name)),
      _sAccesses(_stats.scalar("accesses")),
      _sBytesRead(_stats.scalar("bytesRead")),
      _sBytesWritten(_stats.scalar("bytesWritten"))
{
    NEUMMU_ASSERT(cfg.channels > 0, "memory needs at least one channel");
    NEUMMU_ASSERT(cfg.bytesPerCycle > 0.0, "memory bandwidth must be > 0");
    _bytesPerCyclePerChannel = cfg.bytesPerCycle / double(cfg.channels);
    _channelFree.assign(cfg.channels, 0.0);
}

Tick
MemoryModel::access(Tick now, Addr pa, std::uint64_t bytes, bool is_write)
{
    NEUMMU_ASSERT(bytes > 0, "zero-byte memory access");

    (is_write ? _sBytesWritten : _sBytesRead) += double(bytes);
    ++_sAccesses;

    Tick last_done = now;
    Addr cursor = pa;
    std::uint64_t remaining = bytes;
    while (remaining > 0) {
        const Addr chunk_end =
            (cursor / _cfg.interleaveBytes + 1) * _cfg.interleaveBytes;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(remaining, chunk_end - cursor);
        const unsigned ch =
            unsigned((cursor / _cfg.interleaveBytes) % _cfg.channels);

        const double start = std::max(double(now), _channelFree[ch]);
        const double busy = double(chunk) / _bytesPerCyclePerChannel;
        _channelFree[ch] = start + busy;
        last_done = std::max(
            last_done,
            Tick(start + busy + 0.999999) + _cfg.accessLatency);

        cursor += chunk;
        remaining -= chunk;
    }
    return last_done;
}

Tick
MemoryModel::earliestFree() const
{
    return Tick(
        *std::min_element(_channelFree.begin(), _channelFree.end()));
}

void
MemoryModel::reset()
{
    std::fill(_channelFree.begin(), _channelFree.end(), 0.0);
}

} // namespace neummu
