#include "mem/interconnect.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neummu {

LinkConfig
pcieLinkConfig()
{
    // 16 GB/s at 1 GHz == 16 bytes/cycle (Table I).
    return LinkConfig{16.0, 150};
}

LinkConfig
npuLinkConfig()
{
    // 160 GB/s NPU<->NPU interconnect (Table I).
    return LinkConfig{160.0, 150};
}

Link::Link(std::string name, LinkConfig cfg)
    : _cfg(cfg), _stats(std::move(name)),
      _sBytesTransferred(_stats.scalar("bytesTransferred")),
      _sTransfers(_stats.scalar("transfers")),
      _sAccesses(_stats.scalar("accesses"))
{
    NEUMMU_ASSERT(cfg.bytesPerCycle > 0.0, "link bandwidth must be > 0");
}

Tick
Link::transfer(Tick now, std::uint64_t bytes)
{
    const Tick start = std::max(now, _free);
    const Tick busy = std::max<Tick>(
        1, Tick(double(bytes) / _cfg.bytesPerCycle + 0.999999));
    _free = start + busy;
    _sBytesTransferred += double(bytes);
    ++_sTransfers;
    return start + busy + _cfg.latency;
}

Tick
Link::access(Tick now, std::uint64_t bytes)
{
    // Round trip: request goes out (latency), data serializes back.
    const Tick start = std::max(now, _free);
    const Tick busy = std::max<Tick>(
        1, Tick(double(bytes) / _cfg.bytesPerCycle + 0.999999));
    _free = start + busy;
    _sBytesTransferred += double(bytes);
    ++_sAccesses;
    return start + busy + 2 * _cfg.latency;
}

void
Link::reset()
{
    _free = 0;
}

} // namespace neummu
