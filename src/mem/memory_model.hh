/**
 * @file
 * Bandwidth-constrained, fixed-latency main-memory model.
 *
 * Following the paper (Section II-C), the NPU-local memory is modeled
 * with a fixed access latency and an aggregate bandwidth constraint
 * rather than a cycle-level DRAM simulator: 8 channels, 600 GB/s
 * aggregate, 100-cycle access latency (Table I). Requests are
 * interleaved across channels at a fixed granularity and serialized
 * per channel.
 */

#ifndef NEUMMU_MEM_MEMORY_MODEL_HH
#define NEUMMU_MEM_MEMORY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace neummu {

/** Configuration for a MemoryModel instance (defaults follow Table I). */
struct MemoryConfig
{
    /** Number of independent memory channels. */
    unsigned channels = 8;
    /** Aggregate bandwidth in bytes per cycle (600 GB/s at 1 GHz). */
    double bytesPerCycle = 600.0;
    /** Fixed access latency in cycles. */
    Tick accessLatency = 100;
    /** Channel interleave granularity in bytes. */
    unsigned interleaveBytes = 256;
};

/**
 * Models one memory node (e.g., an NPU's local HBM stack). access()
 * computes the completion time of a request analytically in O(chunks),
 * tracking per-channel busy time; no events are needed.
 */
class MemoryModel
{
  public:
    MemoryModel(std::string name, MemoryConfig cfg);

    /**
     * Issue a read or write of @p bytes at physical address @p pa,
     * arriving at the memory controller at @p now.
     *
     * @return The tick at which the last byte is available (read) or
     *         durable (write).
     */
    Tick access(Tick now, Addr pa, std::uint64_t bytes, bool is_write);

    /** Earliest tick at which any channel is free (for tests). */
    Tick earliestFree() const;

    const MemoryConfig &config() const { return _cfg; }
    stats::Group &stats() { return _stats; }

    /** Forget all channel busy state (between independent phases). */
    void reset();

  private:
    MemoryConfig _cfg;
    double _bytesPerCyclePerChannel;
    /** Fractional busy-until times avoid per-chunk rounding loss. */
    std::vector<double> _channelFree;
    stats::Group _stats;
    /** Cached counters: access() runs per burst, so no per-call
     *  string-keyed stats lookups on the hot path. */
    stats::Scalar &_sAccesses;
    stats::Scalar &_sBytesRead;
    stats::Scalar &_sBytesWritten;
};

} // namespace neummu

#endif // NEUMMU_MEM_MEMORY_MODEL_HH
