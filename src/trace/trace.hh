/**
 * @file
 * Request-lifecycle tracing: configuration, stage taxonomy, and the
 * span record. Deliberately a light header -- SystemConfig embeds
 * TraceConfig and the instrumented components only need the span
 * vocabulary plus the TraceBuffer forward declaration, so including
 * this costs nothing on translation units that never trace.
 *
 * Timestamps are simulated ticks, never host time, so a trace is
 * bit-deterministic: the same seed and model configuration produce
 * the same spans regardless of sim.shards / sim.threads (for any
 * shards >= 1; the shards=0 legacy kernel is a different machine
 * model -- no shard hops -- and traces its own, equally
 * deterministic, timeline).
 *
 * Correlation keys reuse the translation router's client tagging:
 * the top byte of a request id is the issuing NPU, the low bits the
 * DMA-local request id, so every component along the path -- DMA,
 * shard port, hub bridge, MMU engine -- stamps spans for the same
 * request with the same 64-bit key without widening
 * TranslationResponse. The top-byte values 0xFD..0xFF are reserved
 * for span families that are not translation requests (speculative
 * prefetch walks, paging-engine page operations, serving-layer
 * requests), which caps the traceable NPU count at 252 -- far above
 * the router's client-tag space.
 */

#ifndef NEUMMU_TRACE_TRACE_HH
#define NEUMMU_TRACE_TRACE_HH

#include <cstdint>

#include "common/types.hh"

namespace neummu {
namespace trace {

class TraceBuffer;

/** The trace.* binder surface (see config_binder.cc). */
struct TraceConfig
{
    /** Master switch; off means no buffers, no stats, no overhead. */
    bool enabled = false;
    /**
     * Retroactive-capture trigger: a completed request is flushed
     * from the ring only when its end-to-end latency (ticks) reaches
     * this threshold. 0 (with autoP99 off) captures every request.
     */
    Tick tailThreshold = 0;
    /**
     * Additionally flush requests slower than the live p99 of their
     * domain's completion stream (recomputed every 64 completions,
     * so the trigger sequence is a pure function of the per-queue
     * event stream and stays shard-invariant).
     */
    bool autoP99 = false;
    /** Span ring capacity per event-queue buffer (drop-oldest). */
    std::uint64_t ring = 1 << 16;
    /** Tail-mark ring capacity per buffer (drop-oldest). */
    std::uint64_t marks = 1 << 13;
};

/**
 * Lifecycle stages, one per span. The order is the display/report
 * order; stageName() must stay in sync.
 */
enum class Stage : std::uint8_t
{
    // Serving-layer request spans (key top byte 0xFF).
    Request = 0, ///< arrival -> completion (parent span)
    ReqQueue,    ///< arrival -> dispatch to the slot's DMA
    ReqService,  ///< dispatch -> completion

    // Translation-request spans (key = router-tagged request id).
    Translation, ///< DMA issue -> response delivery (parent span)
    CreditWait,  ///< DMA blocked on port credits / walker backpressure
    HopToHub,    ///< NPU-side shard port -> hub ingress hop
    HubQueue,    ///< hub bridge retry queue (walker-full backpressure)
    TlbHit,      ///< TPREG/TLB lookup that hit
    TlbMiss,     ///< TLB lookup that missed (the detect latency)
    PrmbMerge,   ///< merged into an in-flight walk; wait until drain
    Walk,        ///< page-table walk (aux = radix levels accessed)
    Fault,       ///< page-fault service as seen by the walk
    Lookup,      ///< zoo-design secondary lookup (POM DRAM, NMT fetch)
    HopToNpu,    ///< hub -> NPU response hop
    // Synthesized only by the drain-time decomposition.
    QueueDelay,  ///< e2e time not covered by any recorded child span
    Respond,     ///< tail gap between last child span and delivery

    // Standalone span families.
    PageFetch, ///< paging engine: demand fetch (key 0xFE | vpn)
    PageEvict, ///< paging engine: eviction (key 0xFE | victim vpn)

    NumStages
};

const char *stageName(Stage s);

/** One closed span; 32 bytes, the ring element. */
struct TraceSpan
{
    std::uint64_t key = 0;
    Tick start = 0;
    Tick end = 0;
    /** Stage-specific payload (walk levels, tenant<<16|slot, ...). */
    std::uint32_t aux = 0;
    Stage stage = Stage::Translation;
};

/** How many stages exist (array sizing). */
constexpr unsigned numStages = unsigned(Stage::NumStages);

/** Router client tag position (matches translation_router). */
constexpr unsigned clientShift = 56;

/** Key-space top-byte reservations (see file comment). */
constexpr std::uint64_t requestTag = std::uint64_t(0xFF)
                                     << clientShift;
constexpr std::uint64_t pageTag = std::uint64_t(0xFE) << clientShift;
constexpr std::uint64_t prefetchTag = std::uint64_t(0xFD)
                                      << clientShift;

/**
 * Per-NPU sentinel for credit-wait spans: the blocked attempt's id
 * was already consumed (rejected issues burn ids), so the wait
 * cannot be attributed to the request that eventually succeeds. One
 * standalone lane key per NPU keeps the wait visible in the trace.
 */
constexpr std::uint64_t
creditWaitKey(std::uint64_t key_base)
{
    return key_base | ((std::uint64_t(1) << clientShift) - 1);
}

/**
 * True for keys with no completion event of their own (page
 * operations, speculative prefetch walks, the credit-wait sentinels):
 * they are emitted unconditionally. Translation ids and serving
 * request keys are NOT standalone -- both call complete(), so the
 * tail trigger decides whether their lifecycles flush.
 */
constexpr bool
standaloneKey(std::uint64_t key)
{
    return (key >> clientShift) == 0xFD ||
           (key >> clientShift) == 0xFE ||
           (key & ((std::uint64_t(1) << clientShift) - 1)) ==
               ((std::uint64_t(1) << clientShift) - 1);
}

} // namespace trace
} // namespace neummu

#endif // NEUMMU_TRACE_TRACE_HH
