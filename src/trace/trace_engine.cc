/**
 * @file
 * TraceBuffer recording and the TraceEngine drain: lifecycle
 * assembly, the exhaustive per-stage latency partition, the Chrome
 * trace-event sink, and the trace.* stats mirror.
 */

#include "trace/trace_engine.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <unordered_set>

#include "common/logging.hh"

namespace neummu {
namespace trace {

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::Request:
        return "Request";
    case Stage::ReqQueue:
        return "ReqQueue";
    case Stage::ReqService:
        return "ReqService";
    case Stage::Translation:
        return "Translation";
    case Stage::CreditWait:
        return "CreditWait";
    case Stage::HopToHub:
        return "HopToHub";
    case Stage::HubQueue:
        return "HubQueue";
    case Stage::TlbHit:
        return "TlbHit";
    case Stage::TlbMiss:
        return "TlbMiss";
    case Stage::PrmbMerge:
        return "PrmbMerge";
    case Stage::Walk:
        return "Walk";
    case Stage::Fault:
        return "Fault";
    case Stage::Lookup:
        return "Lookup";
    case Stage::HopToNpu:
        return "HopToNpu";
    case Stage::QueueDelay:
        return "QueueDelay";
    case Stage::Respond:
        return "Respond";
    case Stage::PageFetch:
        return "PageFetch";
    case Stage::PageEvict:
        return "PageEvict";
    case Stage::NumStages:
        break;
    }
    return "Unknown";
}

// ---------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------

TraceBuffer::TraceBuffer(const TraceConfig &cfg)
    : _cfg(cfg), _keepAll(cfg.tailThreshold == 0 && !cfg.autoP99)
{
    if (_cfg.ring == 0)
        _cfg.ring = 1;
    if (_cfg.marks == 0)
        _cfg.marks = 1;
    _ring.reserve(std::size_t(std::min<std::uint64_t>(
        _cfg.ring, std::uint64_t(1) << 20)));
}

void
TraceBuffer::push(const TraceSpan &s)
{
    _recorded++;
    if (_ring.size() < _cfg.ring) {
        _ring.push_back(s);
        return;
    }
    // Full: overwrite the oldest entry (drop-oldest, counted).
    _ring[_head] = s;
    _head = (_head + 1) % _ring.size();
    _dropped++;
}

void
TraceBuffer::span(std::uint64_t key, Stage st, Tick start, Tick end,
                  std::uint32_t aux)
{
    NEUMMU_ASSERT(end >= start, "negative-duration trace span");
    TraceSpan s;
    s.key = key;
    s.start = start;
    s.end = end;
    s.aux = aux;
    s.stage = st;
    push(s);
    _stageHist[unsigned(st)].record(end - start);
}

void
TraceBuffer::open(std::uint64_t key, Stage st, Tick start)
{
    _open[unsigned(st)].insert(key, start);
}

Tick
TraceBuffer::close(std::uint64_t key, Stage st, Tick end,
                   std::uint32_t aux)
{
    FlatMap64<Tick> &table = _open[unsigned(st)];
    const Tick *start = table.find(key);
    if (!start)
        return maxTick;
    const Tick s = *start;
    table.erase(key);
    span(key, st, s, end, aux);
    return end - s;
}

void
TraceBuffer::complete(std::uint64_t key, Tick e2e)
{
    _e2e.record(e2e);
    _completions++;
    // The p99 snapshot refreshes every 64 completions, so the keep
    // decision for completion N depends only on completions 1..N of
    // this queue's stream -- shard-invariant by construction.
    bool keep = _keepAll;
    if (!keep && _cfg.tailThreshold != 0 &&
        e2e >= _cfg.tailThreshold)
        keep = true;
    if (!keep && _cfg.autoP99 && _completions > 64 &&
        e2e > _cachedP99)
        keep = true;
    if ((_completions & 63) == 0)
        _cachedP99 = _e2e.quantile(0.99);
    if (keep && !_keepAll)
        mark(key);
}

void
TraceBuffer::mark(std::uint64_t key)
{
    if (_marks.size() < _cfg.marks) {
        _marks.push_back(key);
        return;
    }
    _marks[_marksHead] = key;
    _marksHead = (_marksHead + 1) % _marks.size();
    _marksDropped++;
}

std::size_t
TraceBuffer::openCount() const
{
    std::size_t n = 0;
    for (const FlatMap64<Tick> &t : _open)
        n += t.size();
    return n;
}

// ---------------------------------------------------------------------
// TraceEngine
// ---------------------------------------------------------------------

TraceEngine::TraceEngine(std::string system_name, TraceConfig cfg,
                         unsigned num_queues, stats::Group &stats)
    : _name(std::move(system_name)), _cfg(cfg), _stats(stats)
{
    NEUMMU_ASSERT(num_queues >= 1, "trace engine needs a queue");
    _buffers.reserve(num_queues);
    for (unsigned q = 0; q < num_queues; q++)
        _buffers.push_back(std::make_unique<TraceBuffer>(_cfg));
}

namespace {

/** Grouping order: key runs, then chronological within the run. */
bool
groupLess(const TraceSpan &a, const TraceSpan &b)
{
    if (a.key != b.key)
        return a.key < b.key;
    if (a.start != b.start)
        return a.start < b.start;
    if (a.end != b.end)
        return a.end < b.end;
    if (a.stage != b.stage)
        return a.stage < b.stage;
    return a.aux < b.aux;
}

/** Emission order: chronological across the whole trace. */
bool
emitLess(const TraceSpan &a, const TraceSpan &b)
{
    if (a.start != b.start)
        return a.start < b.start;
    if (a.end != b.end)
        return a.end < b.end;
    if (a.stage != b.stage)
        return a.stage < b.stage;
    if (a.key != b.key)
        return a.key < b.key;
    return a.aux < b.aux;
}

} // namespace

void
TraceEngine::chargeParent(const TraceSpan &parent,
                          std::vector<const TraceSpan *> &children,
                          std::array<StageRow, numStages> &rows,
                          std::uint64_t &charged_ticks)
{
    // Greedy interval partition: walk the children chronologically,
    // trim each to the uncovered remainder [cursor, parent.end], and
    // charge the trimmed width to the child's stage. Gaps no child
    // covers become QueueDelay; the tail after the last child becomes
    // Respond. Every tick of [parent.start, parent.end) is charged to
    // exactly one stage, so the per-request stage sum equals the
    // end-to-end latency identically.
    std::array<std::uint64_t, numStages> t{};
    Tick cursor = parent.start;
    for (const TraceSpan *c : children) {
        const Tick b = std::max(c->start, cursor);
        const Tick f = std::min(c->end, parent.end);
        if (f <= b)
            continue;
        if (b > cursor)
            t[unsigned(Stage::QueueDelay)] += b - cursor;
        t[unsigned(c->stage)] += f - b;
        cursor = f;
    }
    if (parent.end > cursor)
        t[unsigned(Stage::Respond)] += parent.end - cursor;

    for (unsigned s = 0; s < numStages; s++) {
        if (t[s] == 0)
            continue;
        rows[s].count++;
        rows[s].totalTicks += t[s];
        rows[s].hist.record(t[s]);
        charged_ticks += t[s];
    }
}

void
TraceEngine::drain()
{
    _emitted.clear();
    _report = Report{};

    const bool keep_all = _cfg.tailThreshold == 0 && !_cfg.autoP99;
    std::vector<TraceSpan> all;
    std::unordered_set<std::uint64_t> kept;
    for (const std::unique_ptr<TraceBuffer> &bp : _buffers) {
        const TraceBuffer &b = *bp;
        b.forEachSpan([&](const TraceSpan &s) { all.push_back(s); });
        if (!keep_all)
            b.forEachMark(
                [&](std::uint64_t k) { kept.insert(k); });
        _report.spansRecorded += b.spansRecorded();
        _report.dropped += b.dropped();
        _report.marksDropped += b.marksDropped();
        _report.openAtDrain += b.openCount();
    }

    std::sort(all.begin(), all.end(), groupLess);

    std::map<std::uint32_t, TenantRow> tenants;
    std::vector<const TraceSpan *> children;
    std::size_t i = 0;
    while (i < all.size()) {
        std::size_t j = i;
        while (j < all.size() && all[j].key == all[i].key)
            j++;
        const std::uint64_t key = all[i].key;
        const bool emit = keep_all || standaloneKey(key) ||
                          kept.count(key) != 0;
        if (!emit) {
            i = j;
            continue;
        }
        for (std::size_t k = i; k < j; k++)
            _emitted.push_back(all[k]);

        // Lifecycle charge: one parent span per key run.
        const TraceSpan *parent = nullptr;
        for (std::size_t k = i; k < j; k++) {
            if (all[k].stage == Stage::Translation ||
                all[k].stage == Stage::Request) {
                parent = &all[k];
                break;
            }
        }
        if (parent) {
            children.clear();
            for (std::size_t k = i; k < j; k++)
                if (&all[k] != parent)
                    children.push_back(&all[k]);
            const std::uint64_t e2e = parent->end - parent->start;
            if (parent->stage == Stage::Translation) {
                _report.tracedTranslations++;
                _report.translationE2eTicks += e2e;
                chargeParent(*parent, children, _report.stages,
                             _report.translationChargedTicks);
            } else {
                _report.tracedRequests++;
                _report.requestE2eTicks += e2e;
                chargeParent(*parent, children,
                             _report.requestStages,
                             _report.requestChargedTicks);
                TenantRow &row = tenants[parent->aux >> 16];
                row.tenant = parent->aux >> 16;
                row.count++;
                row.e2e.record(e2e);
                for (const TraceSpan *c : children) {
                    if (c->stage == Stage::ReqQueue)
                        row.queue.record(c->end - c->start);
                    else if (c->stage == Stage::ReqService)
                        row.service.record(c->end - c->start);
                }
            }
        }
        i = j;
    }

    _report.sumsMatch =
        _report.translationChargedTicks ==
            _report.translationE2eTicks &&
        _report.requestChargedTicks == _report.requestE2eTicks;
    for (auto &kv : tenants)
        _report.tenants.push_back(std::move(kv.second));

    std::sort(_emitted.begin(), _emitted.end(), emitLess);
    _report.spansEmitted = _emitted.size();
}

std::uint32_t
TraceEngine::laneOf(const TraceSpan &s)
{
    const std::uint64_t tb = s.key >> clientShift;
    if (tb == 0xFF)
        return 1500 + (s.aux & 0xFFFF); // serving slot lane
    if (tb == 0xFE)
        return 1000; // paging engine
    if (tb == 0xFD)
        return 1001; // speculative prefetch walks
    return std::uint32_t(tb); // issuing NPU
}

std::string
TraceEngine::laneName(std::uint32_t lane)
{
    char buf[32];
    if (lane >= 1500) {
        std::snprintf(buf, sizeof(buf), "serve.slot%u", lane - 1500);
        return buf;
    }
    if (lane == 1000)
        return "paging";
    if (lane == 1001)
        return "prefetch";
    std::snprintf(buf, sizeof(buf), "npu%u", lane);
    return buf;
}

void
TraceEngine::writeChromeTrace(std::ostream &os)
{
    drain();

    os << "{\n\"displayTimeUnit\": \"ns\",\n"
       << "\"otherData\": {\"tool\": \"neummu\", \"system\": \""
       << _name << "\", \"timeUnit\": \"simulated ticks\"},\n"
       << "\"traceEvents\": [\n";

    char buf[256];
    bool first = true;
    auto emit = [&](const char *line) {
        if (!first)
            os << ",\n";
        first = false;
        os << line;
    };

    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", "
                  "\"pid\": 0, \"tid\": 0, \"args\": {\"name\": "
                  "\"%s\"}}",
                  _name.c_str());
    emit(buf);

    std::set<std::uint32_t> lanes;
    for (const TraceSpan &s : _emitted)
        lanes.insert(laneOf(s));
    for (const std::uint32_t lane : lanes) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 0, \"tid\": %u, \"args\": {\"name\": "
                      "\"%s\"}}",
                      lane, laneName(lane).c_str());
        emit(buf);
    }

    for (const TraceSpan &s : _emitted) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\": \"%s\", \"cat\": \"neummu\", \"ph\": \"X\", "
            "\"pid\": 0, \"tid\": %u, \"ts\": %" PRIu64
            ", \"dur\": %" PRIu64
            ", \"args\": {\"key\": \"0x%016" PRIx64
            "\", \"aux\": %u}}",
            stageName(s.stage), laneOf(s), s.start, s.end - s.start,
            s.key, s.aux);
        emit(buf);
    }

    os << "\n]\n}\n";
}

bool
TraceEngine::writeChromeTraceFile(const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeChromeTrace(os);
    return bool(os);
}

void
TraceEngine::refreshStats()
{
    drain();
    const Report &r = _report;
    _stats.scalar("spansRecorded").set(double(r.spansRecorded));
    _stats.scalar("spansEmitted").set(double(r.spansEmitted));
    _stats.scalar("dropped").set(double(r.dropped));
    _stats.scalar("marksDropped").set(double(r.marksDropped));
    _stats.scalar("openAtDrain").set(double(r.openAtDrain));
    _stats.scalar("tracedTranslations")
        .set(double(r.tracedTranslations));
    _stats.scalar("tracedRequests").set(double(r.tracedRequests));
    _stats.scalar("sumsMatch").set(r.sumsMatch ? 1.0 : 0.0);
    _stats.scalar("translationE2eTicks")
        .set(double(r.translationE2eTicks));
    _stats.scalar("translationChargedTicks")
        .set(double(r.translationChargedTicks));
    _stats.scalar("requestE2eTicks").set(double(r.requestE2eTicks));
    _stats.scalar("requestChargedTicks")
        .set(double(r.requestChargedTicks));

    for (unsigned s = 0; s < numStages; s++) {
        const std::string base = stageName(Stage(s));
        _stats.scalar(base + "ChargedTicks")
            .set(double(r.stages[s].totalTicks));
        _stats.scalar(base + "ChargedCount")
            .set(double(r.stages[s].count));
        if (r.stages[s].count != 0) {
            stats::Histogram &h =
                _stats.histogram(base + "Charged");
            h.reset();
            h.merge(r.stages[s].hist);
        }
        // Record-time per-stage durations (full coverage, every
        // recorded span regardless of the tail trigger).
        std::uint64_t raw_count = 0;
        for (const std::unique_ptr<TraceBuffer> &bp : _buffers)
            raw_count += bp->stageHist(Stage(s)).count();
        if (raw_count != 0) {
            stats::Histogram &h = _stats.histogram(base + "Raw");
            h.reset();
            for (const std::unique_ptr<TraceBuffer> &bp : _buffers)
                h.merge(bp->stageHist(Stage(s)));
        }
    }
    for (unsigned s = 0; s < numStages; s++) {
        if (r.requestStages[s].count == 0 &&
            r.requestStages[s].totalTicks == 0)
            continue;
        const std::string base = stageName(Stage(s));
        _stats.scalar("req" + base + "ChargedTicks")
            .set(double(r.requestStages[s].totalTicks));
    }
}

} // namespace trace
} // namespace neummu
