/**
 * @file
 * The tracing subsystem: per-event-queue TraceBuffers (single-writer,
 * bounded, drop-oldest) feeding a drain-time TraceEngine that
 * assembles per-request lifecycles, charges every tick of a traced
 * request's end-to-end latency to exactly one stage, and emits
 * Chrome-trace-event JSON (Perfetto-loadable).
 *
 * Threading model mirrors SimProfiler: one TraceBuffer per event
 * queue, touched only from that queue's domain thread while the
 * simulation runs; the engine reads the buffers single-threaded
 * after run() returns. Because each queue's event stream is
 * deterministic and the queue partition is invariant across
 * sim.shards >= 1, the assembled trace -- including the drop-oldest
 * ring contents and the tail-trigger decisions -- is byte-identical
 * across shard counts.
 *
 * Retroactive capture: every span lands in the ring regardless of
 * the trigger; completion-time marks (tailThreshold / live-p99)
 * select which request keys are flushed at drain. The ring is the
 * "flight recorder", the marks are the "dump" decision -- a slow
 * request's whole lifecycle is recoverable after the fact without
 * tracing everything to the sink.
 */

#ifndef NEUMMU_TRACE_TRACE_ENGINE_HH
#define NEUMMU_TRACE_TRACE_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace neummu {
namespace trace {

/**
 * Per-event-queue span recorder. All mutators are called from the
 * owning queue's thread only; the const drain surface is read after
 * the run completes.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(const TraceConfig &cfg);

    // --- record-side (hot path; callers null-check the buffer) -----
    /** Record a closed span. */
    void span(std::uint64_t key, Stage st, Tick start, Tick end,
              std::uint32_t aux = 0);

    /** Park an open span whose end is not yet known. */
    void open(std::uint64_t key, Stage st, Tick start);

    /**
     * Close a parked span and record it; returns the span's duration,
     * or maxTick when (key, stage) was never opened (no-op then, so
     * blanket close calls on paths where only some requests opened
     * are safe).
     */
    Tick close(std::uint64_t key, Stage st, Tick end,
               std::uint32_t aux = 0);

    /**
     * A request keyed @p key completed with end-to-end latency
     * @p e2e: feed the live-p99 estimator and mark the key for
     * retroactive flush when the tail trigger fires.
     */
    void complete(std::uint64_t key, Tick e2e);

    /** Unconditionally mark @p key for flush at drain. */
    void mark(std::uint64_t key);

    // --- drain-side ------------------------------------------------
    std::uint64_t spansRecorded() const { return _recorded; }
    /** Spans overwritten by ring wrap (oldest dropped first). */
    std::uint64_t dropped() const { return _dropped; }
    std::uint64_t marksDropped() const { return _marksDropped; }
    /** Spans opened but never closed (0 after a clean drain). */
    std::size_t openCount() const;
    std::uint64_t completions() const { return _completions; }

    /** Ring contents, oldest to newest (non-destructive). */
    template <typename F>
    void
    forEachSpan(F &&f) const
    {
        const std::size_t n = _ring.size();
        for (std::size_t i = 0; i < n; i++)
            f(_ring[(_head + i) % n]);
    }

    template <typename F>
    void
    forEachMark(F &&f) const
    {
        const std::size_t n = _marks.size();
        for (std::size_t i = 0; i < n; i++)
            f(_marks[(_marksHead + i) % n]);
    }

    bool keepAll() const { return _keepAll; }
    /** Record-time duration histogram per stage (full coverage). */
    const stats::Histogram &stageHist(Stage st) const
    {
        return _stageHist[unsigned(st)];
    }
    const stats::Histogram &e2eHist() const { return _e2e; }

  private:
    void push(const TraceSpan &s);

    TraceConfig _cfg;
    bool _keepAll;

    /** Span ring: append until full, then overwrite at _head. */
    std::vector<TraceSpan> _ring;
    std::size_t _head = 0;
    std::uint64_t _recorded = 0;
    std::uint64_t _dropped = 0;

    /** Marked request keys (drop-oldest ring as well). */
    std::vector<std::uint64_t> _marks;
    std::size_t _marksHead = 0;
    std::uint64_t _marksDropped = 0;

    /** Parked open spans, one table per stage (collision-free). */
    std::array<FlatMap64<Tick>, numStages> _open;

    std::array<stats::Histogram, numStages> _stageHist;
    stats::Histogram _e2e{5};
    std::uint64_t _completions = 0;
    Tick _cachedP99 = 0;
};

/**
 * Owns one TraceBuffer per event queue and the drain-time assembly:
 * lifecycle reconstruction, the per-stage latency decomposition, the
 * Chrome trace sink, and the trace.* stats group (registered by
 * System only when tracing is enabled, so golden dumps never change).
 */
class TraceEngine
{
  public:
    TraceEngine(std::string system_name, TraceConfig cfg,
                unsigned num_queues, stats::Group &stats);

    const TraceConfig &config() const { return _cfg; }
    unsigned numBuffers() const { return unsigned(_buffers.size()); }
    TraceBuffer &buffer(unsigned q) { return *_buffers[q]; }

    /** Per-stage accumulation of the charged decomposition. */
    struct StageRow
    {
        std::uint64_t count = 0;      ///< requests charged this stage
        std::uint64_t totalTicks = 0; ///< ticks charged to this stage
        stats::Histogram hist{5};     ///< per-request charged ticks
    };

    /** Serving-level per-tenant decomposition (from Request spans). */
    struct TenantRow
    {
        std::uint32_t tenant = 0; ///< admission ordinal
        std::uint64_t count = 0;
        stats::Histogram e2e{5};
        stats::Histogram queue{5};
        stats::Histogram service{5};
    };

    struct Report
    {
        /**
         * Charged per-stage decomposition over traced Translation
         * parents, indexed by Stage. Every tick of every traced
         * request's end-to-end latency is charged to exactly one
         * stage (overlaps trimmed, uncovered gaps charged to
         * QueueDelay, the delivery tail to Respond), so
         * sum(stages[*].totalTicks) == e2eTicks by construction --
         * checked and exported as sumsMatch.
         */
        std::array<StageRow, numStages> stages{};
        /** Same partition over serving Request parents. */
        std::array<StageRow, numStages> requestStages{};
        std::vector<TenantRow> tenants;
        std::uint64_t tracedTranslations = 0;
        std::uint64_t tracedRequests = 0;
        std::uint64_t translationChargedTicks = 0;
        std::uint64_t translationE2eTicks = 0;
        std::uint64_t requestChargedTicks = 0;
        std::uint64_t requestE2eTicks = 0;
        bool sumsMatch = true;
        std::uint64_t spansRecorded = 0;
        std::uint64_t spansEmitted = 0;
        std::uint64_t dropped = 0;
        std::uint64_t marksDropped = 0;
        std::uint64_t openAtDrain = 0;
    };

    /**
     * Re-assemble lifecycles from the current buffer contents.
     * Single-threaded; idempotent (buffers are read, not consumed).
     */
    void drain();

    /** Valid after drain(). */
    const Report &report() const { return _report; }
    const std::vector<TraceSpan> &emittedSpans() const
    {
        return _emitted;
    }

    /** Drain + write the Chrome trace-event JSON sink. */
    void writeChromeTrace(std::ostream &os);
    /** writeChromeTrace to @p path; false (with errno intact) on I/O
     *  failure. */
    bool writeChromeTraceFile(const std::string &path);

    /** Drain + mirror the report into the trace.* stats group. */
    void refreshStats();

    /** Display lane (Chrome tid) for a span; see laneName(). */
    static std::uint32_t laneOf(const TraceSpan &s);
    static std::string laneName(std::uint32_t lane);

  private:
    void chargeParent(const TraceSpan &parent,
                      std::vector<const TraceSpan *> &children,
                      std::array<StageRow, numStages> &rows,
                      std::uint64_t &charged_ticks);

    std::string _name;
    TraceConfig _cfg;
    /** unique_ptr: components cache raw TraceBuffer pointers. */
    std::vector<std::unique_ptr<TraceBuffer>> _buffers;
    stats::Group &_stats;

    std::vector<TraceSpan> _emitted;
    Report _report;
};

} // namespace trace
} // namespace neummu

#endif // NEUMMU_TRACE_TRACE_ENGINE_HH
