#include "sim/profiler.hh"

#include "common/logging.hh"

namespace neummu {

const char *
profSubsystemName(ProfSubsystem s)
{
    switch (s) {
      case ProfSubsystem::Kernel: return "kernel";
      case ProfSubsystem::DmaIssue: return "dmaIssue";
      case ProfSubsystem::DmaData: return "dmaData";
      case ProfSubsystem::MmuTranslate: return "mmuTranslate";
      case ProfSubsystem::MmuWalk: return "mmuWalk";
      case ProfSubsystem::MmuRespond: return "mmuRespond";
      case ProfSubsystem::Memory: return "memory";
      case ProfSubsystem::Paging: return "paging";
      case ProfSubsystem::Serving: return "serving";
      case ProfSubsystem::Workload: return "workload";
      case ProfSubsystem::Count: break;
    }
    NEUMMU_PANIC("unknown profile subsystem");
}

std::string
SimProfiler::collapsed() const
{
    std::string out;
    for (unsigned p = 0; p <= rootSlot; p++) {
        for (unsigned c = 0; c < numSlots; c++) {
            const Slot &s = _pairs[p][c];
            if (!s.count)
                continue;
            out += "neummu;";
            if (p != rootSlot) {
                out += profSubsystemName(ProfSubsystem(p));
                out += ';';
            }
            out += profSubsystemName(ProfSubsystem(c));
            out += ' ';
            out += std::to_string(s.nanos);
            out += '\n';
        }
    }
    return out;
}

} // namespace neummu
