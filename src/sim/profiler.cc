#include "sim/profiler.hh"

#include "common/logging.hh"

namespace neummu {

const char *
profSubsystemName(ProfSubsystem s)
{
    switch (s) {
      case ProfSubsystem::Kernel: return "kernel";
      case ProfSubsystem::DmaIssue: return "dmaIssue";
      case ProfSubsystem::DmaData: return "dmaData";
      case ProfSubsystem::MmuTranslate: return "mmuTranslate";
      case ProfSubsystem::MmuWalk: return "mmuWalk";
      case ProfSubsystem::MmuRespond: return "mmuRespond";
      case ProfSubsystem::Memory: return "memory";
      case ProfSubsystem::Paging: return "paging";
      case ProfSubsystem::Serving: return "serving";
      case ProfSubsystem::Workload: return "workload";
      case ProfSubsystem::Count: break;
    }
    NEUMMU_PANIC("unknown profile subsystem");
}

} // namespace neummu
