/**
 * @file
 * Host-side cycle attribution for the simulation kernel
 * (`sim.profile=1`). When enabled, each event queue carries a
 * SimProfiler and the hot components bracket their callback bodies
 * with NEUMMU_PROF_SCOPE, attributing host nanoseconds and dispatch
 * counts to a small fixed set of subsystems. Nested scopes subtract
 * their elapsed time from the enclosing scope, so every subsystem
 * reports *self* time and the rows sum to the total measured wall
 * clock.
 *
 * When profiling is off (the default) the scope macro is a single
 * null-pointer test, so the instrumentation costs nothing measurable
 * on the hot path -- and, critically, no stats groups are registered,
 * keeping the golden stats dumps byte-identical.
 */

#ifndef NEUMMU_SIM_PROFILER_HH
#define NEUMMU_SIM_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace neummu {

/** Attribution buckets for profiled dispatch time. */
enum class ProfSubsystem : unsigned
{
    Kernel = 0, ///< event-queue machinery + unattributed callbacks
    DmaIssue,   ///< DMA burst issue / translation request path
    DmaData,    ///< DMA translation responses and data-burst landing
    MmuTranslate, ///< engine translate() front end (TLB, PTS, TPREG)
    MmuWalk,    ///< page-table walker launch/finish
    MmuRespond, ///< translation response delivery
    Memory,     ///< memory-model access timing
    Paging,     ///< demand paging / fault handling
    Serving,    ///< serving-engine arrivals and dispatch
    Workload,   ///< workload batch issue / tile bookkeeping
    Count
};

const char *profSubsystemName(ProfSubsystem s);

/**
 * Per-event-queue profile accumulator. Single-threaded by
 * construction (one per queue, touched only from that queue's
 * domain thread); System sums across queues at dump time.
 */
class SimProfiler
{
  public:
    struct Slot
    {
        std::uint64_t count = 0;
        std::uint64_t nanos = 0;
    };

    static constexpr unsigned numSlots =
        unsigned(ProfSubsystem::Count);
    /** Pair-matrix parent index for "no enclosing scope". */
    static constexpr unsigned rootSlot = numSlots;

    const Slot &
    slot(ProfSubsystem s) const
    {
        return _slots[unsigned(s)];
    }

    /**
     * (parent, child) attribution: child self-time broken out by the
     * directly enclosing scope (@p parent == rootSlot for top-level
     * scopes). Feeds the collapsed-stack dump.
     */
    const Slot &
    pair(unsigned parent, ProfSubsystem child) const
    {
        return _pairs[parent][unsigned(child)];
    }

    void
    reset()
    {
        _slots.fill(Slot{});
        for (auto &row : _pairs)
            row.fill(Slot{});
    }

    /** Sum another profiler's slots into this one (dump-time merge). */
    void
    merge(const SimProfiler &other)
    {
        for (unsigned i = 0; i < numSlots; i++) {
            _slots[i].count += other._slots[i].count;
            _slots[i].nanos += other._slots[i].nanos;
        }
        for (unsigned p = 0; p <= rootSlot; p++)
            for (unsigned c = 0; c < numSlots; c++) {
                _pairs[p][c].count += other._pairs[p][c].count;
                _pairs[p][c].nanos += other._pairs[p][c].nanos;
            }
    }

    /**
     * Flamegraph-compatible collapsed-stack dump: one
     * "neummu;Parent;Child nanos" line per nonzero (parent, child)
     * pair ("neummu;Child nanos" for top-level scopes), in fixed slot
     * order. Feed to flamegraph.pl / speedscope / inferno as-is. The
     * stacks are two frames deep by construction -- the profiler
     * records the direct parent only, which is exactly the self-time
     * partition the subsystem table reports.
     */
    std::string collapsed() const;

    /**
     * RAII attribution scope. Elapsed time lands in the scope's
     * subsystem and is subtracted from the enclosing scope's, so
     * nesting yields self-time per subsystem.
     */
    class Scope
    {
      public:
        Scope(SimProfiler *prof, ProfSubsystem sub) : _prof(prof)
        {
            if (!_prof)
                return;
            _sub = unsigned(sub);
            _start = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (!_prof)
                return;
            const std::uint64_t ns =
                std::uint64_t(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() -
                                  _start)
                                  .count());
            Slot &s = _prof->_slots[_sub];
            s.count++;
            s.nanos += ns;
            Slot &p = _prof->_pairs[_parentSub][_sub];
            p.count++;
            p.nanos += ns;
            // Self-time discipline, for the slot and its pair alike:
            // nested elapsed time is subtracted from the enclosing
            // accumulators (transiently wrapping is fine -- the
            // enclosing scope's own add nets it out).
            if (_prof->_current)
                _prof->_current->nanos -= ns;
            if (_prof->_currentPair)
                _prof->_currentPair->nanos -= ns;
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        /** Call right after construction when the scope is active. */
        void
        enter()
        {
            if (!_prof)
                return;
            _parent = _prof->_current;
            _parentSub = _prof->_currentSub;
            _parentPair = _prof->_currentPair;
            _prof->_current = &_prof->_slots[_sub];
            _prof->_currentSub = _sub;
            _prof->_currentPair = &_prof->_pairs[_parentSub][_sub];
        }

        /** Paired with enter(); restores the enclosing scope. */
        void
        leave()
        {
            if (!_prof)
                return;
            // Scopes are strictly LIFO: leaving a scope that is not
            // the innermost one means an enter/leave pair was
            // dropped or reordered, and every self-time subtraction
            // from here on would land in the wrong slot.
            NEUMMU_ASSERT(_prof->_current == &_prof->_slots[_sub] &&
                              _prof->_currentSub == _sub,
                          "profiler scopes must unwind LIFO");
            _prof->_current = _parent;
            _prof->_currentSub = _parentSub;
            _prof->_currentPair = _parentPair;
        }

      private:
        SimProfiler *_prof;
        unsigned _sub = 0;
        /** Direct parent at enter() time (rootSlot when top-level). */
        unsigned _parentSub = rootSlot;
        Slot *_parent = nullptr;
        Slot *_parentPair = nullptr;
        std::chrono::steady_clock::time_point _start;
    };

  private:
    std::array<Slot, numSlots> _slots{};
    /** [parent][child] self-time; parent rootSlot = top level. */
    std::array<std::array<Slot, numSlots>, rootSlot + 1> _pairs{};
    Slot *_current = nullptr;
    unsigned _currentSub = rootSlot;
    Slot *_currentPair = nullptr;
};

/**
 * Attribution scope for one callback body. @p prof is a SimProfiler*
 * (null when profiling is off -- the common case, costing one branch).
 */
#define NEUMMU_PROF_CONCAT2(a, b) a##b
#define NEUMMU_PROF_CONCAT(a, b) NEUMMU_PROF_CONCAT2(a, b)
#define NEUMMU_PROF_SCOPE(prof, sub)                                  \
    ::neummu::ProfScopeGuard NEUMMU_PROF_CONCAT(                      \
        neummu_prof_scope_, __LINE__)((prof), (sub))

/** Scope + current-slot bookkeeping bundled for the macro. */
class ProfScopeGuard
{
  public:
    ProfScopeGuard(SimProfiler *prof, ProfSubsystem sub)
        : _scope(prof, sub)
    {
        _scope.enter();
    }
    ~ProfScopeGuard() { _scope.leave(); }

  private:
    SimProfiler::Scope _scope;
};

} // namespace neummu

#endif // NEUMMU_SIM_PROFILER_HH
