#include "sim/event_queue.hh"

#include <utility>

namespace neummu {

bool
EventQueue::step()
{
    if (_events.empty())
        return false;

    // priority_queue::top() is const; the callback must be moved out
    // before pop, so copy the metadata and steal the callback.
    Event ev = std::move(const_cast<Event &>(_events.top()));
    _events.pop();

    NEUMMU_ASSERT(ev.when >= _now, "event queue went backwards");
    _now = ev.when;
    _executed++;
    ev.cb();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!_events.empty() && _events.top().when <= limit) {
        if (!step())
            break;
    }
    return _now;
}

} // namespace neummu
