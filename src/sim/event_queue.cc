#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

namespace neummu {

EventQueue::EventQueue()
    : _buckets(nearWindowTicks), _occupied(nearWindowTicks / 64, 0)
{
}

void
EventQueue::appendToBucket(Tick when, int priority, std::uint64_t seq,
                           Callback cb)
{
    Bucket &b = bucketFor(when);
    if (!b.hasPending()) {
        b.when = when;
        b.maxPriority = priority;
        const std::size_t idx = std::size_t(when & _mask);
        _occupied[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    } else {
        NEUMMU_ASSERT(b.when == when, "calendar bucket tick clash");
        // Appends arrive in seq order, so the pending range stays
        // (priority, seq)-sorted as long as priorities never
        // decrease; a lower priority landing mid-tick (it must
        // preempt pending same-tick work) forces a deferred sort.
        if (priority < b.maxPriority)
            b.needsSort = true;
        else
            b.maxPriority = priority;
    }
    b.events.push_back(Event{priority, seq, std::move(cb)});
    _ringCount++;
}

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    NEUMMU_ASSERT(when >= _now, "scheduling into the past");
    const std::uint64_t seq = _nextSeq++;
    if (when - _cursor < nearWindowTicks) {
        appendToBucket(when, priority, seq, std::move(cb));
    } else {
        _far.push_back(FarEvent{when, priority, seq, std::move(cb)});
        std::push_heap(_far.begin(), _far.end(), FarAfter{});
    }
    _pending++;
    if (_pending > _peakDepth)
        _peakDepth = _pending;
}

void
EventQueue::migrateFarIntoWindow()
{
    while (!_far.empty() &&
           _far.front().when - _cursor < nearWindowTicks) {
        std::pop_heap(_far.begin(), _far.end(), FarAfter{});
        FarEvent fe = std::move(_far.back());
        _far.pop_back();
        // Heap pops arrive in (when, priority, seq) order, so
        // same-tick migrations append pre-sorted.
        appendToBucket(fe.when, fe.priority, fe.seq,
                       std::move(fe.cb));
    }
}

bool
EventQueue::findNext(Tick limit)
{
    if (_pending == 0)
        return false;
    if (_ringCount == 0) {
        // Nothing in the window: jump the gap to the next far event
        // instead of scanning empty buckets tick by tick. The jump
        // target is dispatched immediately below, so the cursor
        // never strands past an undispatched limit.
        NEUMMU_ASSERT(!_far.empty(), "pending-count bookkeeping lost");
        if (_far.front().when > limit)
            return false;
        _cursor = _far.front().when;
        migrateFarIntoWindow();
    }
    // Far events lie at or beyond the window end, so the nearest
    // pending event is always a ring event; advance the cursor to
    // it, then pull far events the window now covers.
    const Tick next = nextOccupiedTick(_cursor);
    if (next > limit)
        return false;
    _cursor = next;
    migrateFarIntoWindow();
    return true;
}

Tick
EventQueue::nextOccupiedTick(Tick from) const
{
    const std::size_t nwords = _occupied.size();
    const std::size_t start = std::size_t(from & _mask);
    std::size_t word = start >> 6;
    // Partial first word: bits at or after the start position.
    std::uint64_t bits = _occupied[word] >> (start & 63);
    if (bits != 0)
        return from + Tick(__builtin_ctzll(bits));
    const Tick to_next_word = Tick(64 - (start & 63));
    for (std::size_t i = 0; i < nwords; i++) {
        word = (word + 1) & (nwords - 1);
        bits = _occupied[word];
        if (bits != 0) {
            return from + to_next_word + Tick(i) * 64 +
                   Tick(__builtin_ctzll(bits));
        }
    }
    NEUMMU_PANIC("ring-count bookkeeping lost");
}

void
EventQueue::dispatchOne()
{
    Bucket &b = _buckets[_cursor & _mask];
    NEUMMU_ASSERT(b.when == _cursor && b.when >= _now,
                  "event queue went backwards");
    if (b.needsSort) {
        std::sort(b.events.begin() +
                      std::ptrdiff_t(b.head),
                  b.events.end(),
                  [](const Event &a, const Event &e) {
                      if (a.priority != e.priority)
                          return a.priority < e.priority;
                      return a.seq < e.seq;
                  });
        b.needsSort = false;
        b.maxPriority = b.events.back().priority;
    }

    Event ev = std::move(b.events[b.head]);
    b.head++;
    if (b.head == b.events.size()) {
        // Fully consumed: recycle the storage (capacity retained)
        // before running the callback, which may schedule fresh
        // events into this same bucket.
        b.events.clear();
        b.head = 0;
        b.maxPriority = std::numeric_limits<int>::min();
        b.needsSort = false;
        const std::size_t idx = std::size_t(_cursor & _mask);
        _occupied[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }
    _ringCount--;
    _pending--;

    _now = _cursor;
    _executed++;
    ev.cb();
}

bool
EventQueue::step()
{
    if (!findNext(maxTick))
        return false;
    dispatchOne();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (findNext(limit))
        dispatchOne();
    return _now;
}

Tick
EventQueue::nextEventTick() const
{
    if (_pending == 0)
        return maxTick;
    // Far events always lie at or beyond the window end, so any
    // pending ring event wins; scan resumes from the cursor.
    if (_ringCount == 0)
        return _far.front().when;
    return nextOccupiedTick(_cursor);
}

} // namespace neummu
