#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

namespace neummu {

EventQueue::EventQueue()
    : _buckets(nearWindowTicks), _occupied(nearWindowTicks / 64, 0)
{
}

void
EventQueue::enableProfiling()
{
    if (!_prof)
        _prof = std::make_unique<SimProfiler>();
}

void
EventQueue::appendToBucket(Tick when, int priority, std::uint64_t seq,
                           Callback &&cb)
{
    Bucket &b = bucketFor(when);
    if (!b.hasPending()) {
        b.when = when;
        const std::size_t idx = std::size_t(when & _mask);
        _occupied[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    } else {
        NEUMMU_ASSERT(b.when == when, "calendar bucket tick clash");
        // The pending range stays (priority, seq)-sorted as long as
        // appends arrive in that order -- the common case, since seqs
        // rise monotonically with schedule() calls. A lower-ordered
        // arrival (a priority preemption, a far-heap migration
        // landing next to newer ring events, or a train anchor
        // carrying its preassigned seq) forces a deferred sort.
        const Event &last = b.events.back();
        if (priority < last.priority ||
            (priority == last.priority && seq < last.seq)) {
            b.needsSort = true;
        }
    }
    b.events.push_back(Event{priority, seq, std::move(cb)});
    _ringCount++;
}

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    NEUMMU_ASSERT(when >= _now, "scheduling into the past");
    const std::uint64_t seq = _nextSeq++;
    if (when - _cursor < nearWindowTicks) {
        appendToBucket(when, priority, seq, std::move(cb));
    } else {
        _far.push_back(FarEvent{when, priority, seq, std::move(cb)});
        std::push_heap(_far.begin(), _far.end(), FarAfter{});
    }
    _pending++;
    if (_pending > _peakDepth)
        _peakDepth = _pending;
}

std::uint32_t
EventQueue::allocTrain()
{
    if (!_freeTrains.empty()) {
        const std::uint32_t ti = _freeTrains.back();
        _freeTrains.pop_back();
        return ti;
    }
    _trains.emplace_back();
    return std::uint32_t(_trains.size() - 1);
}

void
EventQueue::freeTrain(std::uint32_t ti)
{
    _trains[ti].cb = TrainCallback();
    _freeTrains.push_back(ti);
}

void
EventQueue::armTrain(std::uint32_t ti)
{
    Train &t = _trains[ti];
    const Tick when = t.next;
    NEUMMU_ASSERT(when >= _now, "train armed into the past");
    Callback anchor = [this, ti] { runTrainSub(ti); };
    if (when - _cursor < nearWindowTicks) {
        appendToBucket(when, t.priority, t.nextSeq,
                       std::move(anchor));
    } else {
        _far.push_back(
            FarEvent{when, t.priority, t.nextSeq, std::move(anchor)});
        std::push_heap(_far.begin(), _far.end(), FarAfter{});
    }
}

void
EventQueue::scheduleTrain(Tick first, Tick stride, TrainCallback cb,
                          int priority)
{
    NEUMMU_ASSERT(first >= _now, "scheduling into the past");
    NEUMMU_ASSERT(stride >= 1, "train stride must be positive");
    const std::uint32_t ti = allocTrain();
    Train &t = _trains[ti];
    t.next = first;
    t.stride = stride;
    t.idx = 0;
    t.remaining = 0;
    t.nextSeq = _nextSeq++;
    t.priority = priority;
    t.batch = false;
    t.cb = std::move(cb);
    _pending++;
    if (_pending > _peakDepth)
        _peakDepth = _pending;
    _trainsStarted++;
    armTrain(ti);
}

void
EventQueue::scheduleTrainBatch(Tick first, Tick stride,
                               std::uint64_t count, TrainCallback cb,
                               int priority)
{
    NEUMMU_ASSERT(first >= _now, "scheduling into the past");
    NEUMMU_ASSERT(stride >= 1, "train stride must be positive");
    NEUMMU_ASSERT(count >= 1, "empty train batch");
    const std::uint32_t ti = allocTrain();
    Train &t = _trains[ti];
    t.next = first;
    t.stride = stride;
    t.idx = 0;
    t.remaining = count;
    t.nextSeq = _nextSeq;
    _nextSeq += count;
    t.priority = priority;
    t.batch = true;
    t.cb = std::move(cb);
    // All sub-events become pending at once, exactly like the
    // equivalent back-to-back schedule() loop; the intermediate
    // depths rise monotonically, so one high-water check covers
    // every step of the rise.
    _pending += count;
    if (_pending > _peakDepth)
        _peakDepth = _pending;
    _trainsStarted++;
    armTrain(ti);
}

void
EventQueue::runTrainSub(std::uint32_t ti)
{
    // The anchor dispatch that got us here already accounted the due
    // sub-event (_pending--, _executed++, _now advance) in
    // dispatchOne; each inline continuation below accounts its own
    // before the loop comes back around. The callback is invoked in
    // place: _trains is a deque, so a callback that starts new
    // trains never invalidates this train's storage.
    bool advanced = false;
    for (;;) {
        Train &t = _trains[ti];
        const std::uint64_t idx = t.idx++;
        const bool batch = t.batch;
        const Tick stride = t.stride;
        t.next += stride;
        if (batch) {
            t.remaining--;
            t.nextSeq++;
        }
        const bool keep = t.cb(idx);
        bool again;
        if (batch) {
            NEUMMU_ASSERT(keep, "batch train stopped early");
            again = t.remaining > 0;
        } else {
            again = keep;
            if (again) {
                // Matches an event rescheduling itself as its last
                // action: the seq is drawn after everything the
                // callback scheduled, and the train re-registers as
                // exactly one pending event.
                t.nextSeq = _nextSeq++;
                _pending++;
                if (_pending > _peakDepth)
                    _peakDepth = _pending;
            }
        }
        if (!again) {
            freeTrain(ti);
            break;
        }
        const Tick nt = t.next;
        // Dispatch the continuation inline -- skipping the calendar
        // entirely -- when it is provably the globally next event:
        // nothing else pends at the current tick or the next one,
        // stride one keeps the gap closed, the far heap holds
        // nothing at or before it, and the run limit covers it.
        if (stride == 1 && nt <= _runLimit &&
            !bucketFor(_now).hasPending() &&
            !bucketFor(nt).hasPending() &&
            (_far.empty() || _far.front().when > nt)) {
            _cursor = nt;
            _now = nt;
            _pending--;
            _executed++;
            _trainSubInlined++;
            advanced = true;
            continue;
        }
        armTrain(ti);
        break;
    }
    // Inline dispatch advances the cursor without the usual findNext
    // migration, so far events may now sit inside the window; restore
    // the invariant before the calendar machinery runs again. (Only
    // needed when a continuation actually ran inline -- the common
    // single-sub dispatch leaves the cursor untouched.)
    if (advanced)
        migrateFarIntoWindow();
}

void
EventQueue::migrateFarIntoWindow()
{
    while (!_far.empty() &&
           _far.front().when - _cursor < nearWindowTicks) {
        std::pop_heap(_far.begin(), _far.end(), FarAfter{});
        FarEvent fe = std::move(_far.back());
        _far.pop_back();
        appendToBucket(fe.when, fe.priority, fe.seq,
                       std::move(fe.cb));
    }
}

bool
EventQueue::findNext(Tick limit)
{
    if (_pending == 0)
        return false;
    if (_ringCount == 0) {
        // Nothing in the window: jump the gap to the next far event
        // instead of scanning empty buckets tick by tick. The jump
        // target is dispatched immediately below, so the cursor
        // never strands past an undispatched limit.
        NEUMMU_ASSERT(!_far.empty(), "pending-count bookkeeping lost");
        if (_far.front().when > limit)
            return false;
        _cursor = _far.front().when;
        migrateFarIntoWindow();
    }
    // Far events lie at or beyond the window end, so the nearest
    // pending event is always a ring event; advance the cursor to
    // it, then pull far events the window now covers.
    const Tick next = nextOccupiedTick(_cursor);
    if (next > limit)
        return false;
    _cursor = next;
    migrateFarIntoWindow();
    return true;
}

Tick
EventQueue::nextOccupiedTick(Tick from) const
{
    const std::size_t nwords = _occupied.size();
    const std::size_t start = std::size_t(from & _mask);
    std::size_t word = start >> 6;
    // Partial first word: bits at or after the start position.
    std::uint64_t bits = _occupied[word] >> (start & 63);
    if (bits != 0)
        return from + Tick(__builtin_ctzll(bits));
    const Tick to_next_word = Tick(64 - (start & 63));
    for (std::size_t i = 0; i < nwords; i++) {
        word = (word + 1) & (nwords - 1);
        bits = _occupied[word];
        if (bits != 0) {
            return from + to_next_word + Tick(i) * 64 +
                   Tick(__builtin_ctzll(bits));
        }
    }
    NEUMMU_PANIC("ring-count bookkeeping lost");
}

void
EventQueue::dispatchOne()
{
    Bucket &b = _buckets[_cursor & _mask];
    NEUMMU_ASSERT(b.when == _cursor && b.when >= _now,
                  "event queue went backwards");
    if (b.needsSort) {
        std::sort(b.events.begin() +
                      std::ptrdiff_t(b.head),
                  b.events.end(),
                  [](const Event &a, const Event &e) {
                      if (a.priority != e.priority)
                          return a.priority < e.priority;
                      return a.seq < e.seq;
                  });
        b.needsSort = false;
    }

    Event ev = std::move(b.events[b.head]);
    b.head++;
    if (b.head == b.events.size()) {
        // Fully consumed: recycle the storage (capacity retained)
        // before running the callback, which may schedule fresh
        // events into this same bucket.
        b.events.clear();
        b.head = 0;
        b.needsSort = false;
        const std::size_t idx = std::size_t(_cursor & _mask);
        _occupied[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }
    _ringCount--;
    _pending--;

    _now = _cursor;
    _executed++;
    ev.cb();
}

bool
EventQueue::step()
{
    // A pinned run limit of zero keeps train dispatch from inlining
    // continuations, so one step() is always exactly one
    // (sub-)event.
    _runLimit = 0;
    if (!findNext(maxTick))
        return false;
    dispatchOne();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    _runLimit = limit;
    NEUMMU_PROF_SCOPE(_prof.get(), ProfSubsystem::Kernel);
    while (findNext(limit)) {
        dispatchOne();
        // Anything the dispatched events scheduled for the same tick
        // landed in the cursor's bucket and is globally next (far
        // events sit at or beyond the window end), so drain it
        // without rescanning the calendar.
        while (_buckets[_cursor & _mask].hasPending()) {
            _sameTickShortcuts++;
            dispatchOne();
        }
    }
    return _now;
}

Tick
EventQueue::nextEventTick() const
{
    if (_pending == 0)
        return maxTick;
    // Far events always lie at or beyond the window end, so any
    // pending ring event wins; scan resumes from the cursor.
    if (_ringCount == 0)
        return _far.front().when;
    return nextOccupiedTick(_cursor);
}

} // namespace neummu
