/**
 * @file
 * Small-buffer-optimized callback for the simulation kernel. Every
 * scheduled event stores one of these; the simulator's hot paths
 * (DMA issue loop, walk completions, PRMB drains) capture only a
 * component pointer plus a few words of state, so steady-state
 * scheduling never touches the heap. Captures larger than the inline
 * buffer still work -- they transparently fall back to a heap
 * allocation -- but the cycle-level components are written to stay
 * under the limit.
 */

#ifndef NEUMMU_SIM_CALLBACK_HH
#define NEUMMU_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace neummu {

/**
 * Move-only void() callable with inline storage for captures up to
 * inlineBytes. Invoking an empty callback is undefined; the
 * EventQueue never stores empty callbacks.
 */
class EventCallback
{
  public:
    /**
     * Inline capture capacity. Sized for the simulator's largest hot
     * callback (a component pointer plus a TranslationResponse) with
     * room to spare; bump deliberately if a hot path ever outgrows
     * it, and let cold paths spill to the heap.
     */
    static constexpr std::size_t inlineBytes = 48;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&f) // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            new (_buf) Fn(std::forward<F>(f));
            _ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(_buf) =
                new Fn(std::forward<F>(f));
            _ops = &heapOps<Fn>;
        }
    }

    EventCallback(EventCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    void operator()() { _ops->invoke(_buf); }

    explicit operator bool() const { return _ops != nullptr; }

    /** True when a callable of type Fn is stored without allocating. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *buf);
    };

    template <typename Fn> static const Ops inlineOps;
    template <typename Fn> static const Ops heapOps;

    void
    moveFrom(EventCallback &&other) noexcept
    {
        _ops = other._ops;
        if (_ops)
            _ops->relocate(_buf, other._buf);
        other._ops = nullptr;
    }

    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[inlineBytes];
    const Ops *_ops = nullptr;
};

template <typename Fn>
const EventCallback::Ops EventCallback::inlineOps = {
    [](void *buf) {
        (*std::launder(reinterpret_cast<Fn *>(buf)))();
    },
    [](void *dst, void *src) {
        Fn *from = std::launder(reinterpret_cast<Fn *>(src));
        new (dst) Fn(std::move(*from));
        from->~Fn();
    },
    [](void *buf) {
        std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
    },
};

template <typename Fn>
const EventCallback::Ops EventCallback::heapOps = {
    [](void *buf) { (**reinterpret_cast<Fn **>(buf))(); },
    [](void *dst, void *src) {
        *reinterpret_cast<Fn **>(dst) =
            *reinterpret_cast<Fn **>(src);
    },
    [](void *buf) { delete *reinterpret_cast<Fn **>(buf); },
};

} // namespace neummu

#endif // NEUMMU_SIM_CALLBACK_HH
