/**
 * @file
 * Small-buffer-optimized callables for the simulation kernel. Every
 * scheduled event stores one of these; the simulator's hot paths
 * (DMA issue loop, walk completions, PRMB drains) capture only a
 * component pointer plus a few words of state, so steady-state
 * scheduling never touches the heap. Captures larger than the inline
 * buffer still work -- they transparently fall back to a heap
 * allocation -- but the cycle-level components are written to stay
 * under the limit.
 *
 * An event moves several times between creation and dispatch (into
 * the schedule call, into its calendar bucket, out again at
 * dispatch). Trivially copyable captures -- which all the hot
 * callbacks are -- relocate with a flat fixed-size copy instead of an
 * indirect call per move, which is worth several ns per event at
 * simulation rates of tens of millions of events per second.
 */

#ifndef NEUMMU_SIM_CALLBACK_HH
#define NEUMMU_SIM_CALLBACK_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace neummu {

template <typename Sig>
class InlineCallback;

/**
 * Move-only callable with inline storage for captures up to
 * inlineBytes. Invoking an empty callback is undefined; the
 * EventQueue never stores empty callbacks.
 */
template <typename R, typename... Args>
class InlineCallback<R(Args...)>
{
  public:
    /**
     * Inline capture capacity. Sized for the simulator's largest hot
     * callback (a component pointer plus a TranslationResponse) with
     * room to spare; bump deliberately if a hot path ever outgrows
     * it, and let cold paths spill to the heap.
     */
    static constexpr std::size_t inlineBytes = 48;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f) // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            new (_buf) Fn(std::forward<F>(f));
            _ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(_buf) =
                new Fn(std::forward<F>(f));
            _ops = &heapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    R
    operator()(Args... args)
    {
        return _ops->invoke(_buf, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return _ops != nullptr; }

    /** True when a callable of type Fn is stored without allocating. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *buf, Args &&...args);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *buf);
        /**
         * Relocation is a plain byte copy and destruction a no-op
         * (trivially copyable + destructible inline capture): moves
         * skip the indirect relocate call entirely.
         */
        bool trivial;
    };

    template <typename Fn> static const Ops inlineOps;
    template <typename Fn> static const Ops heapOps;

    void
    moveFrom(InlineCallback &&other) noexcept
    {
        _ops = other._ops;
        if (_ops) {
            if (_ops->trivial)
                std::memcpy(_buf, other._buf, inlineBytes);
            else
                _ops->relocate(_buf, other._buf);
        }
        other._ops = nullptr;
    }

    void
    reset() noexcept
    {
        if (_ops) {
            if (!_ops->trivial)
                _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[inlineBytes];
    const Ops *_ops = nullptr;
};

template <typename R, typename... Args>
template <typename Fn>
const typename InlineCallback<R(Args...)>::Ops
    InlineCallback<R(Args...)>::inlineOps = {
        [](void *buf, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(buf)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *buf) {
            std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
        },
        std::is_trivially_copyable_v<Fn> &&
            std::is_trivially_destructible_v<Fn>,
};

template <typename R, typename... Args>
template <typename Fn>
const typename InlineCallback<R(Args...)>::Ops
    InlineCallback<R(Args...)>::heapOps = {
        [](void *buf, Args &&...args) -> R {
            return (**reinterpret_cast<Fn **>(buf))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *buf) { delete *reinterpret_cast<Fn **>(buf); },
        false,
};

/** The EventQueue's event payload. */
using EventCallback = InlineCallback<void()>;

/**
 * One sub-event of an event train (EventQueue::scheduleTrain /
 * scheduleTrainBatch), invoked with the sub-event index. A chain
 * train re-arms while the callback returns true; a batch train runs
 * its full count and must always return true.
 */
using TrainCallback = InlineCallback<bool(std::uint64_t)>;

} // namespace neummu

#endif // NEUMMU_SIM_CALLBACK_HH
