#include "sim/domain.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"

namespace neummu {

void
DomainRuntime::Barrier::arriveAndWait()
{
    std::unique_lock<std::mutex> lock(_m);
    const std::uint64_t arrived_gen = _generation;
    if (++_waiting == _parties) {
        _waiting = 0;
        _generation++;
        _cv.notify_all();
        return;
    }
    _cv.wait(lock,
             [this, arrived_gen] { return _generation != arrived_gen; });
}

DomainRuntime::DomainRuntime(unsigned num_queues, unsigned num_units,
                             std::vector<unsigned> domain_of_queue,
                             Tick hop_ticks, unsigned threads)
    : _numUnits(num_units), _hop(hop_ticks)
{
    NEUMMU_ASSERT(num_queues >= 1, "domain runtime needs a hub queue");
    NEUMMU_ASSERT(num_units >= 1, "domain runtime needs a unit");
    NEUMMU_ASSERT(hop_ticks >= 1,
                  "lookahead (hopTicks) must be at least one tick");
    NEUMMU_ASSERT(domain_of_queue.size() == num_queues,
                  "domain map must cover every queue");

    unsigned max_domain = 0;
    for (const unsigned d : domain_of_queue)
        max_domain = std::max(max_domain, d);
    _numDomains = max_domain + 1;
    NEUMMU_ASSERT(domain_of_queue[0] == 0,
                  "the hub queue must live in domain 0");

    _numThreads = threads ? std::min(threads, _numDomains)
                          : _numDomains;

    _queues.reserve(num_queues);
    for (unsigned q = 0; q < num_queues; q++)
        _queues.push_back(std::make_unique<EventQueue>());

    // Thread t executes domains t, t + T, t + 2T, ... -- queue order
    // within a thread follows queue index, so execution order is
    // stable for any thread count (not that it matters: queues only
    // interact at barriers).
    _queuesOfThread.resize(_numThreads);
    for (unsigned q = 0; q < num_queues; q++)
        _queuesOfThread[domain_of_queue[q] % _numThreads].push_back(q);

    _slots.resize(std::size_t(num_queues) * num_units);
    _sendersOfQueue.resize(num_queues);
}

void
DomainRuntime::addChannel(unsigned to_queue, unsigned sender_unit)
{
    NEUMMU_ASSERT(!_running,
                  "channels must be registered before run()");
    NEUMMU_ASSERT(to_queue < _queues.size(),
                  "channel to unknown queue");
    NEUMMU_ASSERT(sender_unit < _numUnits,
                  "channel from unknown unit");
    Slot &s = slot(to_queue, sender_unit);
    if (s.open)
        return;
    s.open = true;
    std::vector<unsigned> &senders = _sendersOfQueue[to_queue];
    senders.insert(std::lower_bound(senders.begin(), senders.end(),
                                    sender_unit),
                   sender_unit);
    _liveSlots.push_back(std::size_t(to_queue) * _numUnits +
                         sender_unit);
}

EventQueue &
DomainRuntime::queue(unsigned q)
{
    NEUMMU_ASSERT(q < _queues.size(), "queue index out of range");
    return *_queues[q];
}

void
DomainRuntime::post(unsigned to_queue, unsigned sender_unit,
                    Tick deliver, EventCallback cb)
{
    NEUMMU_ASSERT(to_queue < _queues.size(),
                  "message to unknown queue");
    NEUMMU_ASSERT(sender_unit < _numUnits,
                  "message from unknown unit");
    Slot &s = slot(to_queue, sender_unit);
    NEUMMU_ASSERT(s.open, "post on unregistered channel -- call "
                          "addChannel at wiring time");
    const unsigned b = unsigned(_round & 1);
    s.minDeliver[b] = std::min(s.minDeliver[b], deliver);
    s.posted++;
    s.msgs[b].push_back(Message{deliver, std::move(cb)});
}

void
DomainRuntime::inject(unsigned q)
{
    // Drain the buffers filled in the PREVIOUS round: senders are
    // concurrently appending to the current-parity buffers, which
    // this round never touches.
    EventQueue &eq = *_queues[q];
    const unsigned b = unsigned((_round - 1) & 1);
    for (const unsigned u : _sendersOfQueue[q]) {
        Slot &s = slot(q, u);
        if (s.msgs[b].empty())
            continue;
        for (Message &m : s.msgs[b]) {
            // The lookahead contract: a message can never be due in
            // the window its sender posted it from, so it always
            // arrives here -- at a round start -- before its tick.
            NEUMMU_ASSERT(m.deliver >= eq.now(),
                          "cross-domain message violated lookahead");
            eq.schedule(m.deliver, std::move(m.cb));
        }
        s.msgs[b].clear();
        s.minDeliver[b] = maxTick;
    }
}

void
DomainRuntime::executeRound(unsigned t)
{
    for (const unsigned q : _queuesOfThread[t]) {
        inject(q);
        _queues[q]->run(_windowEnd);
    }
}

void
DomainRuntime::computeNextWindow()
{
    Tick next = maxTick;
    for (const auto &q : _queues)
        next = std::min(next, q->nextEventTick());
    for (const std::size_t i : _liveSlots) {
        const Slot &s = _slots[i];
        next = std::min({next, s.minDeliver[0], s.minDeliver[1]});
    }

    if (next == maxTick || next > _limit) {
        _done = true;
        return;
    }
    // Hop-aligned window grid: windows are disjoint and every tick
    // belongs to exactly one executed round, which pins the injection
    // round of every message no matter how domains are threaded.
    const Tick start = next - next % _hop;
    Tick end = start + _hop - 1;
    if (end < start || end > _limit)
        end = _limit;
    _windowEnd = end;
}

void
DomainRuntime::workerLoop(unsigned t, Barrier &barrier)
{
    // _round was advanced before the workers were spawned, so the
    // first pass executes immediately; between the two barriers only
    // the coordinator touches the round state.
    while (true) {
        executeRound(t);
        barrier.arriveAndWait();
        if (t == 0) {
            computeNextWindow();
            if (!_done)
                _round++;
        }
        barrier.arriveAndWait();
        if (_done)
            break;
    }
}

Tick
DomainRuntime::run(Tick limit)
{
    NEUMMU_ASSERT(!_running, "DomainRuntime::run is not reentrant");
    _running = true;
    _limit = limit;
    _done = false;
    computeNextWindow();

    if (!_done && _numThreads == 1) {
        // Serial reference path: the same window loop, no barriers.
        while (!_done) {
            _round++;
            executeRound(0);
            computeNextWindow();
        }
    } else if (!_done) {
        _round++;
        Barrier barrier(_numThreads);
        std::vector<std::thread> workers;
        workers.reserve(_numThreads - 1);
        for (unsigned t = 1; t < _numThreads; t++)
            workers.emplace_back(
                [this, t, &barrier] { workerLoop(t, barrier); });
        workerLoop(0, barrier);
        for (std::thread &w : workers)
            w.join();
    }
    _running = false;
    return now();
}

Tick
DomainRuntime::now() const
{
    Tick t = 0;
    for (const auto &q : _queues)
        t = std::max(t, q->now());
    return t;
}

std::uint64_t
DomainRuntime::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : _queues)
        n += q->eventsExecuted();
    return n;
}

std::uint64_t
DomainRuntime::peakDepth() const
{
    std::uint64_t d = 0;
    for (const auto &q : _queues)
        d = std::max(d, q->peakDepth());
    return d;
}

std::uint64_t
DomainRuntime::messagesPosted() const
{
    std::uint64_t n = 0;
    for (const std::size_t i : _liveSlots)
        n += _slots[i].posted;
    return n;
}

} // namespace neummu
