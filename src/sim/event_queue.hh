/**
 * @file
 * Discrete-event simulation kernel. All cycle-level components in the
 * simulator (DMA engine, MMU, memory) schedule callbacks on a shared
 * EventQueue; one tick equals one NPU clock cycle (1 GHz, Table I).
 *
 * The queue is a bucketed calendar: a near-term ring of per-tick
 * buckets covering the next nearWindowTicks cycles, plus a far-term
 * binary heap for events beyond the window. Steady-state scheduling
 * (walk completions, burst launches, PRMB drains -- all within a few
 * hundred cycles) is a ring append with no heap allocation: the
 * callback type is small-buffer optimized (sim/callback.hh) and the
 * bucket vectors retain their capacity across reuse. Far events
 * migrate into the ring as the window advances; when the ring drains
 * entirely (e.g. a multi-thousand-cycle page-fault gap), the cursor
 * jumps straight to the next far event instead of scanning the gap.
 *
 * Event trains (scheduleTrain / scheduleTrainBatch) batch the
 * dominant self-rescheduling chains -- the DMA's one-burst-per-cycle
 * issue loop and the PRMB's one-response-per-cycle drains -- into a
 * single parked state machine. Each sub-event still counts as one
 * executed event and one pending entry, with exactly the (tick,
 * priority, seq) order the equivalent chain of singleton events
 * would have had; the batching is purely a host-side shortcut that
 * skips the calendar machinery whenever the train's next sub-event
 * is provably the globally next event. Simulated results (and the
 * golden stats dumps) are bit-identical with trains on or off.
 */

#ifndef NEUMMU_SIM_EVENT_QUEUE_HH
#define NEUMMU_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/callback.hh"
#include "sim/profiler.hh"

namespace neummu {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same
 * tick execute in (priority, insertion-order) order, which keeps the
 * simulation deterministic -- including events scheduled for the
 * current tick while it is being dispatched, and a lower-priority
 * value scheduled mid-tick preempting already-pending same-tick work.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Default event priority. Lower values execute first. */
    static constexpr int defaultPriority = 0;

    /**
     * Width of the near-term calendar window, in ticks (power of
     * two). Events within now() + nearWindowTicks take the ring fast
     * path; anything farther goes to the far-term heap.
     */
    static constexpr Tick nearWindowTicks = 1024;

    EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    void schedule(Tick when, Callback cb,
                  int priority = defaultPriority);

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, int priority = defaultPriority)
    {
        schedule(_now + delta, std::move(cb), priority);
    }

    /**
     * Schedule a *chain train*: sub-event 0 runs at @p first; after
     * each sub-event, the callback's return value decides whether
     * the train re-arms @p stride ticks later. Semantically
     * identical to an event that reschedules itself as the last
     * action of its callback -- same seq assignment (the re-arm seq
     * is drawn after everything the callback scheduled), same
     * pending-count profile (one pending entry while armed), one
     * executed event per sub-event -- but the kernel dispatches
     * consecutive sub-events inline when nothing interleaves.
     * @pre stride >= 1
     */
    void scheduleTrain(Tick first, Tick stride, TrainCallback cb,
                       int priority = defaultPriority);

    /**
     * Schedule a *batch train*: @p count sub-events at @p first,
     * first+stride, ..., with consecutive seqs reserved up front.
     * Semantically identical to a loop scheduling @p count singleton
     * events back to back (the PRMB drain pattern): all seqs are
     * assigned at call time and the pending count rises by @p count
     * immediately. The callback must return true for every
     * sub-event.
     * @pre count >= 1, stride >= 1, first >= now()
     */
    void scheduleTrainBatch(Tick first, Tick stride,
                            std::uint64_t count, TrainCallback cb,
                            int priority = defaultPriority);

    bool empty() const { return _pending == 0; }
    std::size_t size() const { return _pending; }

    /** Time of the next pending event; maxTick when empty. */
    Tick nextEventTick() const;

    /** Execute exactly one event (the earliest); returns false if idle. */
    bool step();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit. The limit is inclusive: an event scheduled exactly at
     * @p limit executes; the first event strictly after it stays
     * pending. Returns the final simulated time (which is <= limit,
     * and less when the queue drained early -- now() is never
     * advanced past the last executed event).
     */
    Tick run(Tick limit = maxTick);

    /** Total number of events executed (for simulator stats). */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** High-water mark of pending events (for simulator stats). */
    std::uint64_t peakDepth() const { return _peakDepth; }

    /** Trains started over the queue's lifetime (host-side counter). */
    std::uint64_t trainsStarted() const { return _trainsStarted; }

    /**
     * Train sub-events dispatched inline, without touching the
     * calendar (host-side fast-path counter; simulated results are
     * unaffected).
     */
    std::uint64_t
    trainSubEventsInlined() const
    {
        return _trainSubInlined;
    }

    /**
     * Same-tick dispatches that skipped the calendar scan (host-side
     * fast-path counter).
     */
    std::uint64_t
    sameTickShortcuts() const
    {
        return _sameTickShortcuts;
    }

    /**
     * Enable host-side cycle attribution on this queue. The profiler
     * lives for the queue's lifetime; components reach it via
     * profiler() for NEUMMU_PROF_SCOPE.
     */
    void enableProfiling();

    /** The queue's profiler; null unless enableProfiling() ran. */
    SimProfiler *profiler() { return _prof.get(); }

  private:
    struct Event
    {
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    /**
     * One tick's events. Because the ring covers exactly
     * nearWindowTicks ticks and events are never scheduled into the
     * past, all events in one bucket share one tick. Events append in
     * seq order; dispatch consumes [head, events.size()). The vector
     * is cleared (capacity retained) once fully consumed, so
     * steady-state reuse never reallocates.
     */
    struct Bucket
    {
        std::vector<Event> events;
        std::size_t head = 0;
        /** Tick the pending events belong to (valid when non-empty). */
        Tick when = 0;
        /** Remaining range is not (priority, seq)-sorted. */
        bool needsSort = false;

        bool hasPending() const { return !events.empty(); }
    };

    struct FarEvent
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    /** Min-heap order on (when, priority, seq). */
    struct FarAfter
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /**
     * A parked train state machine. While live, the train's next
     * sub-event is materialized as exactly one calendar event (its
     * *anchor*), so ordering, pending counts, and window queries all
     * flow through the ordinary machinery; runTrainSub() then
     * dispatches further sub-events inline for as long as the train
     * provably stays the globally next event.
     */
    struct Train
    {
        Tick next = 0;
        Tick stride = 1;
        std::uint64_t idx = 0;
        /** Batch only: sub-events left, incl. the next one. */
        std::uint64_t remaining = 0;
        /** Batch only: preassigned seq of the next sub-event. */
        std::uint64_t nextSeq = 0;
        int priority = defaultPriority;
        bool batch = false;
        TrainCallback cb;
    };

    static constexpr Tick _mask = nearWindowTicks - 1;
    static_assert((nearWindowTicks & _mask) == 0,
                  "near window must be a power of two");

    Bucket &bucketFor(Tick when) { return _buckets[when & _mask]; }
    void appendToBucket(Tick when, int priority, std::uint64_t seq,
                        Callback &&cb);
    void migrateFarIntoWindow();
    /**
     * Earliest tick >= @p from with a pending ring event, via the
     * occupancy bitmap (one lap max).
     * @pre a pending ring event exists in [from, from + window)
     */
    Tick nextOccupiedTick(Tick from) const;
    /**
     * Advance the cursor to the earliest pending event's bucket
     * (migrating far events as the window moves); false when idle or
     * when that event lies strictly after @p limit. The cursor is
     * only ever committed to a tick that is dispatched next, so
     * outside of dispatch _cursor == _now and schedule() window
     * arithmetic never sees a cursor ahead of time.
     */
    bool findNext(Tick limit);
    /** Pop and execute the earliest event of the cursor's bucket. */
    void dispatchOne();

    std::uint32_t allocTrain();
    void freeTrain(std::uint32_t ti);
    /** Materialize the train's next sub-event as a calendar event. */
    void armTrain(std::uint32_t ti);
    /** Dispatch the train's due sub-event (plus inline followers). */
    void runTrainSub(std::uint32_t ti);

    std::vector<Bucket> _buckets;
    /**
     * One bit per bucket: set while the bucket has pending events,
     * so gap traversal (sparse timelines, e.g. a blocked IOMMU
     * waiting out a 400-cycle walk) skips 64 empty ticks per word
     * instead of probing every bucket.
     */
    std::vector<std::uint64_t> _occupied;
    /**
     * Window start: all ring events lie in [_cursor, _cursor +
     * nearWindowTicks), all far events at or beyond the window end.
     * Never exceeds the earliest pending ring event's tick and never
     * regresses, so bucket scans resume where they left off.
     */
    Tick _cursor = 0;
    std::size_t _ringCount = 0;
    /** Far-term overflow heap (std::push_heap/pop_heap on FarAfter). */
    std::vector<FarEvent> _far;

    /**
     * Deque, not vector: a sub-event callback may start new trains
     * (growing this container), and runTrainSub invokes the stored
     * callback in place -- the deque's stable element addresses make
     * that safe without moving the callback out and back per
     * sub-event.
     */
    std::deque<Train> _trains;
    std::vector<std::uint32_t> _freeTrains;

    Tick _now = 0;
    std::size_t _pending = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _peakDepth = 0;
    /**
     * Inclusive tick bound of the active run(); inline train
     * dispatch never crosses it. step() pins it to 0 so a single
     * step never executes more than one (sub-)event.
     */
    Tick _runLimit = 0;

    std::uint64_t _trainsStarted = 0;
    std::uint64_t _trainSubInlined = 0;
    std::uint64_t _sameTickShortcuts = 0;

    std::unique_ptr<SimProfiler> _prof;
};

} // namespace neummu

#endif // NEUMMU_SIM_EVENT_QUEUE_HH
