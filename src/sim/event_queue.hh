/**
 * @file
 * Discrete-event simulation kernel. All cycle-level components in the
 * simulator (DMA engine, MMU, memory) schedule callbacks on a shared
 * EventQueue; one tick equals one NPU clock cycle (1 GHz, Table I).
 */

#ifndef NEUMMU_SIM_EVENT_QUEUE_HH
#define NEUMMU_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace neummu {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same
 * tick execute in (priority, insertion-order) order, which keeps the
 * simulation deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default event priority. Lower values execute first. */
    static constexpr int defaultPriority = 0;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb, int priority = defaultPriority)
    {
        NEUMMU_ASSERT(when >= _now, "scheduling into the past");
        _events.push(Event{when, priority, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, int priority = defaultPriority)
    {
        schedule(_now + delta, std::move(cb), priority);
    }

    bool empty() const { return _events.empty(); }
    std::size_t size() const { return _events.size(); }

    /** Time of the next pending event; maxTick when empty. */
    Tick
    nextEventTick() const
    {
        return _events.empty() ? maxTick : _events.top().when;
    }

    /** Execute exactly one event (the earliest); returns false if idle. */
    bool step();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit. Returns the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Total number of events executed (for simulator stats). */
    std::uint64_t eventsExecuted() const { return _executed; }

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct EventCompare
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, EventCompare> _events;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace neummu

#endif // NEUMMU_SIM_EVENT_QUEUE_HH
