/**
 * @file
 * Discrete-event simulation kernel. All cycle-level components in the
 * simulator (DMA engine, MMU, memory) schedule callbacks on a shared
 * EventQueue; one tick equals one NPU clock cycle (1 GHz, Table I).
 *
 * The queue is a bucketed calendar: a near-term ring of per-tick
 * buckets covering the next nearWindowTicks cycles, plus a far-term
 * binary heap for events beyond the window. Steady-state scheduling
 * (walk completions, burst launches, PRMB drains -- all within a few
 * hundred cycles) is a ring append with no heap allocation: the
 * callback type is small-buffer optimized (sim/callback.hh) and the
 * bucket vectors retain their capacity across reuse. Far events
 * migrate into the ring as the window advances; when the ring drains
 * entirely (e.g. a multi-thousand-cycle page-fault gap), the cursor
 * jumps straight to the next far event instead of scanning the gap.
 */

#ifndef NEUMMU_SIM_EVENT_QUEUE_HH
#define NEUMMU_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/callback.hh"

namespace neummu {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same
 * tick execute in (priority, insertion-order) order, which keeps the
 * simulation deterministic -- including events scheduled for the
 * current tick while it is being dispatched, and a lower-priority
 * value scheduled mid-tick preempting already-pending same-tick work.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Default event priority. Lower values execute first. */
    static constexpr int defaultPriority = 0;

    /**
     * Width of the near-term calendar window, in ticks (power of
     * two). Events within now() + nearWindowTicks take the ring fast
     * path; anything farther goes to the far-term heap.
     */
    static constexpr Tick nearWindowTicks = 1024;

    EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    void schedule(Tick when, Callback cb,
                  int priority = defaultPriority);

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, int priority = defaultPriority)
    {
        schedule(_now + delta, std::move(cb), priority);
    }

    bool empty() const { return _pending == 0; }
    std::size_t size() const { return _pending; }

    /** Time of the next pending event; maxTick when empty. */
    Tick nextEventTick() const;

    /** Execute exactly one event (the earliest); returns false if idle. */
    bool step();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit. The limit is inclusive: an event scheduled exactly at
     * @p limit executes; the first event strictly after it stays
     * pending. Returns the final simulated time (which is <= limit,
     * and less when the queue drained early -- now() is never
     * advanced past the last executed event).
     */
    Tick run(Tick limit = maxTick);

    /** Total number of events executed (for simulator stats). */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** High-water mark of pending events (for simulator stats). */
    std::uint64_t peakDepth() const { return _peakDepth; }

  private:
    struct Event
    {
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    /**
     * One tick's events. Because the ring covers exactly
     * nearWindowTicks ticks and events are never scheduled into the
     * past, all events in one bucket share one tick. Events append in
     * seq order; dispatch consumes [head, events.size()). The vector
     * is cleared (capacity retained) once fully consumed, so
     * steady-state reuse never reallocates.
     */
    struct Bucket
    {
        std::vector<Event> events;
        std::size_t head = 0;
        /** Tick the pending events belong to (valid when non-empty). */
        Tick when = 0;
        /** Max priority appended since the last drain/sort. */
        int maxPriority = std::numeric_limits<int>::min();
        /** Remaining range is not (priority, seq)-sorted. */
        bool needsSort = false;

        bool hasPending() const { return !events.empty(); }
    };

    struct FarEvent
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    /** Min-heap order on (when, priority, seq). */
    struct FarAfter
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    static constexpr Tick _mask = nearWindowTicks - 1;
    static_assert((nearWindowTicks & _mask) == 0,
                  "near window must be a power of two");

    Bucket &bucketFor(Tick when) { return _buckets[when & _mask]; }
    void appendToBucket(Tick when, int priority, std::uint64_t seq,
                        Callback cb);
    void migrateFarIntoWindow();
    /**
     * Earliest tick >= @p from with a pending ring event, via the
     * occupancy bitmap (one lap max).
     * @pre a pending ring event exists in [from, from + window)
     */
    Tick nextOccupiedTick(Tick from) const;
    /**
     * Advance the cursor to the earliest pending event's bucket
     * (migrating far events as the window moves); false when idle or
     * when that event lies strictly after @p limit. The cursor is
     * only ever committed to a tick that is dispatched next, so
     * outside of dispatch _cursor == _now and schedule() window
     * arithmetic never sees a cursor ahead of time.
     */
    bool findNext(Tick limit);
    /** Pop and execute the earliest event of the cursor's bucket. */
    void dispatchOne();

    std::vector<Bucket> _buckets;
    /**
     * One bit per bucket: set while the bucket has pending events,
     * so gap traversal (sparse timelines, e.g. a blocked IOMMU
     * waiting out a 400-cycle walk) skips 64 empty ticks per word
     * instead of probing every bucket.
     */
    std::vector<std::uint64_t> _occupied;
    /**
     * Window start: all ring events lie in [_cursor, _cursor +
     * nearWindowTicks), all far events at or beyond the window end.
     * Never exceeds the earliest pending ring event's tick and never
     * regresses, so bucket scans resume where they left off.
     */
    Tick _cursor = 0;
    std::size_t _ringCount = 0;
    /** Far-term overflow heap (std::push_heap/pop_heap on FarAfter). */
    std::vector<FarEvent> _far;

    Tick _now = 0;
    std::size_t _pending = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _peakDepth = 0;
};

} // namespace neummu

#endif // NEUMMU_SIM_EVENT_QUEUE_HH
