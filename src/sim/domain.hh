/**
 * @file
 * Conservative parallel discrete-event runtime: per-unit event queues
 * grouped into thread domains, synchronized on a fixed-lookahead
 * barrier window.
 *
 * The model is partitioned into units (for NeuMMU: the hub -- MMU,
 * router, paging engine -- plus one unit per NPU). Every unit that is
 * not co-resident with the hub owns a private calendar EventQueue;
 * queues are grouped into domains and each domain advances on its own
 * thread. All cross-unit interaction travels through per-(receiver
 * queue, sender unit) mailboxes with a fixed minimum latency of
 * hopTicks -- the lookahead -- so a domain can safely execute the
 * whole window [W, W + hopTicks) without observing any other domain:
 * a message posted inside the window is due no earlier than the next
 * window.
 *
 * Determinism is by construction, independent of thread count and
 * interleaving:
 *  - each queue's event stream is its own scheduled events plus
 *    messages injected at barrier-delimited round starts;
 *  - injection iterates sender units in ascending unit id, FIFO per
 *    sender, so same-tick cross-sender ties always resolve the same
 *    way (the per-queue insertion seq does the rest);
 *  - the window sequence itself is a pure function of queue state:
 *    after each round the coordinator jumps to the hop-aligned window
 *    containing the globally earliest pending event or message.
 *
 * Mailbox slots are single-writer (one sender unit, running on one
 * thread) and are only read on the other side of a barrier, so the
 * runtime is race-free without per-message locks or atomics.
 */

#ifndef NEUMMU_SIM_DOMAIN_HH
#define NEUMMU_SIM_DOMAIN_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"

namespace neummu {

/**
 * Owns the per-unit queues, the mailboxes, and the barrier-window
 * execution loop. Queue 0 is by convention the hub queue; unit ids
 * are model-wide and need not map 1:1 onto queues (several hub-
 * resident units may share queue 0).
 */
class DomainRuntime
{
  public:
    /**
     * @param num_queues Event queues (>= 1); queue 0 is the hub.
     * @param num_units Sender-unit id space for mailbox slots.
     * @param domain_of_queue Domain index per queue; domains must be
     *        numbered contiguously from 0 (queue 0 in domain 0).
     * @param hop_ticks Cross-unit message latency = lookahead window
     *        width (>= 1). Every post() must honor it.
     * @param threads Worker threads; 0 = one per domain. More threads
     *        than domains is clamped; fewer folds several domains
     *        onto one thread (results are identical either way).
     */
    DomainRuntime(unsigned num_queues, unsigned num_units,
                  std::vector<unsigned> domain_of_queue,
                  Tick hop_ticks, unsigned threads);

    unsigned numQueues() const { return unsigned(_queues.size()); }
    unsigned numDomains() const { return _numDomains; }
    unsigned numThreads() const { return _numThreads; }
    Tick hopTicks() const { return _hop; }

    EventQueue &queue(unsigned q);

    /**
     * Declare that @p sender_unit will post to @p to_queue. Channels
     * must be registered before run() (single-threaded wiring time);
     * the round loop then scans only live channels instead of the
     * full queues x units slot matrix -- for a 64-NPU hub-and-spoke
     * system that is ~130 slots per window instead of ~4200.
     * Idempotent.
     */
    void addChannel(unsigned to_queue, unsigned sender_unit);

    /**
     * Post a cross-unit message: run @p cb on queue @p to_queue at
     * exactly tick @p deliver. The channel must have been registered
     * with addChannel(). Must be called from the thread currently
     * executing @p sender_unit's queue (or before run()), with
     * deliver >= sender now + hopTicks(); the runtime asserts the
     * lookahead on injection.
     */
    void post(unsigned to_queue, unsigned sender_unit, Tick deliver,
              EventCallback cb);

    /**
     * Drain every queue (and mailbox) up to and including @p limit
     * under barrier-window synchronization; returns the final time
     * (max over queues). Not reentrant.
     */
    Tick run(Tick limit = maxTick);

    /** Max of the per-queue clocks (call outside run()). */
    Tick now() const;
    /** Sum of per-queue executed-event counts. */
    std::uint64_t eventsExecuted() const;
    /** Max of the per-queue peak pending-event depths. */
    std::uint64_t peakDepth() const;
    /** Synchronization rounds executed by run() so far. */
    std::uint64_t windowsExecuted() const { return _round; }
    /** Cross-unit messages posted so far. */
    std::uint64_t messagesPosted() const;

  private:
    struct Message
    {
        Tick deliver;
        EventCallback cb;
    };

    /**
     * One (receiver queue, sender unit) mailbox, double-buffered by
     * round parity: during round R the sender appends to buffer
     * [R & 1] while the receiver drains buffer [(R - 1) & 1] at its
     * round start, so writer and reader never touch the same vector
     * (every message is injected exactly one round after it was
     * posted). Padded so neighboring senders do not false-share.
     */
    struct alignas(64) Slot
    {
        std::vector<Message> msgs[2];
        Tick minDeliver[2] = {maxTick, maxTick};
        std::uint64_t posted = 0;
        bool open = false;
    };

    /** Generation-counted central barrier (condition variable). */
    class Barrier
    {
      public:
        explicit Barrier(unsigned parties) : _parties(parties) {}
        void arriveAndWait();

      private:
        std::mutex _m;
        std::condition_variable _cv;
        unsigned _parties;
        unsigned _waiting = 0;
        std::uint64_t _generation = 0;
    };

    Slot &slot(unsigned q, unsigned u)
    {
        return _slots[std::size_t(q) * _numUnits + u];
    }
    /** Schedule queue @p q's pending messages (ascending unit id). */
    void inject(unsigned q);
    /** Inject + run one window for every queue of thread @p t. */
    void executeRound(unsigned t);
    /** Advance _windowEnd to the next nonempty window, or set _done. */
    void computeNextWindow();
    void workerLoop(unsigned t, Barrier &barrier);

    std::vector<std::unique_ptr<EventQueue>> _queues;
    unsigned _numUnits;
    unsigned _numDomains;
    unsigned _numThreads;
    Tick _hop;
    /** Queue indices per thread, precomputed from domain_of_queue. */
    std::vector<std::vector<unsigned>> _queuesOfThread;
    std::vector<Slot> _slots;
    /** Registered sender units per queue, ascending (inject order). */
    std::vector<std::vector<unsigned>> _sendersOfQueue;
    /** Flat (queue, unit) list of live channels (window scan). */
    std::vector<std::size_t> _liveSlots;

    // Round state: written by the coordinator (thread 0) between
    // barriers, read by every worker after the barrier. _round is the
    // 1-based number of the round currently (or last) executed; posts
    // before run() count as round 0, so the first round drains them.
    Tick _limit = maxTick;
    Tick _windowEnd = 0;
    bool _done = false;
    bool _running = false;
    std::uint64_t _round = 0;
};

} // namespace neummu

#endif // NEUMMU_SIM_DOMAIN_HH
